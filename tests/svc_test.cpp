// Unit tests for the service layer's building blocks: JobKey
// canonicalization, the bounded priority queue's admission/ordering
// semantics, the sharded LRU + single-flight ResultCache, and the
// latency histogram / metrics exporter.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.hpp"
#include "svc/cache_store.hpp"
#include "svc/job_key.hpp"
#include "svc/job_queue.hpp"
#include "svc/metrics.hpp"
#include "svc/result_cache.hpp"
#include "svc/service.hpp"
#include "trace/stats.hpp"

namespace gpawfd {
namespace {

core::SimJobSpec small_spec(int ngrids = 8, int cores = 4) {
  core::SimJobSpec spec;
  spec.approach = sched::Approach::kHybridMultiple;
  spec.job.grid_shape = Vec3::cube(24);
  spec.job.ngrids = ngrids;
  spec.opt = sched::Optimizations::all_on(2);
  spec.total_cores = cores;
  spec.cores_per_node = 4;
  return spec;
}

core::SimResult result_with_seconds(double s) {
  core::SimResult r;
  r.seconds = s;
  return r;
}

// ---- hashing utilities ------------------------------------------------

TEST(Hash, Fnv1aIsStableAndSensitive) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_NE(fnv1a(""), fnv1a(std::string_view("\0", 1)));
}

TEST(Hash, CombineIsOrderSensitive) {
  const std::uint64_t a = hash_combine(hash_combine(0, 1), 2);
  const std::uint64_t b = hash_combine(hash_combine(0, 2), 1);
  EXPECT_NE(a, b);
}

// ---- canonical encodings ---------------------------------------------

TEST(Canonical, JobConfigRoundTripsEveryField) {
  sched::JobConfig a, b;
  EXPECT_EQ(sched::canonical_string(a), sched::canonical_string(b));
  b.ngrids = 33;
  EXPECT_NE(sched::canonical_string(a), sched::canonical_string(b));
  b = a;
  b.periodic = false;
  EXPECT_NE(sched::canonical_string(a), sched::canonical_string(b));
  b = a;
  b.grid_shape = {144, 144, 145};
  EXPECT_NE(sched::canonical_string(a), sched::canonical_string(b));
}

TEST(Canonical, OptimizationsDistinguishBatchAndToggles) {
  const auto a = sched::Optimizations::all_on(8);
  auto b = a;
  EXPECT_EQ(sched::canonical_string(a), sched::canonical_string(b));
  b.batch_size = 4;
  EXPECT_NE(sched::canonical_string(a), sched::canonical_string(b));
  b = a;
  b.double_buffering = false;
  EXPECT_NE(sched::canonical_string(a), sched::canonical_string(b));
}

// ---- JobKey -----------------------------------------------------------

TEST(JobKey, EqualSpecsGiveEqualKeys) {
  const auto a = svc::JobKey::of(small_spec());
  const auto b = svc::JobKey::of(small_spec());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_EQ(a.canonical(), b.canonical());
}

TEST(JobKey, EveryAxisOfTheSpecChangesTheKey) {
  const auto base = svc::JobKey::of(small_spec());

  auto s = small_spec();
  s.approach = sched::Approach::kFlatOriginal;
  EXPECT_NE(svc::JobKey::of(s), base) << "approach not encoded";

  s = small_spec();
  s.job.ngrids = 9;
  EXPECT_NE(svc::JobKey::of(s), base) << "job not encoded";

  s = small_spec();
  s.opt.batch_size = 4;
  EXPECT_NE(svc::JobKey::of(s), base) << "optimizations not encoded";

  s = small_spec();
  s.total_cores = 8;
  EXPECT_NE(svc::JobKey::of(s), base) << "cores not encoded";

  s = small_spec();
  s.machine.link_bandwidth *= 1.0000001;
  EXPECT_NE(svc::JobKey::of(s), base) << "machine constants not encoded";

  s = small_spec();
  s.scaled.grid_cap = 128;
  EXPECT_NE(svc::JobKey::of(s), base) << "scaling options not encoded";
}

TEST(JobKey, CanonicalStringCarriesTheVersion) {
  const auto k = svc::JobKey::of(small_spec());
  EXPECT_EQ(k.canonical().rfind("v1|", 0), 0u) << k.canonical();
}

// ---- JobQueue ---------------------------------------------------------

TEST(JobQueue, RejectsWhenFullInsteadOfBlocking) {
  svc::JobQueue<int> q(2);
  EXPECT_EQ(q.try_push(1), svc::PushResult::kAccepted);
  EXPECT_EQ(q.try_push(2), svc::PushResult::kAccepted);
  EXPECT_EQ(q.try_push(3), svc::PushResult::kQueueFull);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.high_water(), 2u);
}

TEST(JobQueue, PriorityClassesDrainHighestFirstFifoWithin) {
  svc::JobQueue<int> q(8);
  ASSERT_EQ(q.try_push(10, svc::Priority::kBatch), svc::PushResult::kAccepted);
  ASSERT_EQ(q.try_push(1, svc::Priority::kInteractive),
            svc::PushResult::kAccepted);
  ASSERT_EQ(q.try_push(5, svc::Priority::kNormal), svc::PushResult::kAccepted);
  ASSERT_EQ(q.try_push(2, svc::Priority::kInteractive),
            svc::PushResult::kAccepted);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 5);
  EXPECT_EQ(q.pop(), 10);
}

TEST(JobQueue, CloseDrainsThenUnblocksConsumers) {
  svc::JobQueue<int> q(4);
  ASSERT_EQ(q.try_push(7), svc::PushResult::kAccepted);
  q.close();
  EXPECT_EQ(q.try_push(8), svc::PushResult::kClosed);
  EXPECT_EQ(q.pop(), 7);            // still drains what was admitted
  EXPECT_EQ(q.pop(), std::nullopt);  // then signals exhaustion
}

TEST(JobQueue, PushWaitBlocksUntilSpace) {
  svc::JobQueue<int> q(1);
  ASSERT_EQ(q.try_push(1), svc::PushResult::kAccepted);
  std::thread producer([&] {
    EXPECT_EQ(q.push_wait(2), svc::PushResult::kAccepted);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(q.pop(), 1);  // frees the slot the producer waits on
  producer.join();
  EXPECT_EQ(q.pop(), 2);
}

TEST(JobQueue, DrainRemainingEmptiesEverything) {
  svc::JobQueue<int> q(4);
  q.try_push(1);
  q.try_push(2, svc::Priority::kBatch);
  q.close();
  const auto rest = q.drain_remaining();
  EXPECT_EQ(rest.size(), 2u);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(JobQueue, PopBatchDrainsOneClassFifoNeverMixing) {
  svc::JobQueue<int> q(16);
  for (int i = 0; i < 5; ++i)
    ASSERT_EQ(q.try_push(i, svc::Priority::kNormal),
              svc::PushResult::kAccepted);
  ASSERT_EQ(q.try_push(100, svc::Priority::kBatch),
            svc::PushResult::kAccepted);
  // Capped at max_n, FIFO within the class.
  const auto first = q.pop_batch(4);
  ASSERT_EQ(first.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(first[static_cast<size_t>(i)], i);
  // A batch never crosses into a lower class, even with room left.
  const auto second = q.pop_batch(4);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], 4);
  const auto third = q.pop_batch(4);
  ASSERT_EQ(third.size(), 1u);
  EXPECT_EQ(third[0], 100);
}

TEST(JobQueue, PopBatchNeverBatchesInteractive) {
  svc::JobQueue<int> q(16);
  ASSERT_EQ(q.try_push(1, svc::Priority::kInteractive),
            svc::PushResult::kAccepted);
  ASSERT_EQ(q.try_push(2, svc::Priority::kInteractive),
            svc::PushResult::kAccepted);
  ASSERT_EQ(q.try_push(10, svc::Priority::kNormal),
            svc::PushResult::kAccepted);
  // Interactive items leave one per wakeup regardless of max_n: their
  // latency must not pay for their neighbours.
  const auto a = q.pop_batch(8);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0], 1);
  const auto b = q.pop_batch(8);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], 2);
  const auto c = q.pop_batch(8);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], 10);
}

TEST(JobQueue, PopBatchRampFollowsClassDepth) {
  svc::JobQueue<int> q(16);
  for (int i = 0; i < 8; ++i)
    ASSERT_EQ(q.try_push(i), svc::PushResult::kAccepted);
  // ceil(depth/2) bounded by max_n: 8 -> 4, 4 -> 2, 2 -> 1, 1 -> 1.
  EXPECT_EQ(q.pop_batch(8, /*ramp=*/true).size(), 4u);
  EXPECT_EQ(q.pop_batch(8, /*ramp=*/true).size(), 2u);
  EXPECT_EQ(q.pop_batch(8, /*ramp=*/true).size(), 1u);
  EXPECT_EQ(q.pop_batch(8, /*ramp=*/true).size(), 1u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(JobQueue, PopBatchCloseMidStreamDrainsCleanly) {
  svc::JobQueue<int> q(8);
  for (int i = 0; i < 3; ++i)
    ASSERT_EQ(q.try_push(i), svc::PushResult::kAccepted);
  q.close();
  // What was admitted still leaves in one batch...
  const auto batch = q.pop_batch(8);
  ASSERT_EQ(batch.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(batch[static_cast<size_t>(i)], i);
  // ...then the empty vector signals closed-and-drained.
  EXPECT_TRUE(q.pop_batch(8).empty());
  EXPECT_EQ(q.try_push(9), svc::PushResult::kClosed);
}

TEST(JobQueue, PopBatchLingerFillsTheBatch) {
  svc::JobQueue<int> q(16);
  std::vector<int> got;
  std::thread consumer([&] {
    got = q.pop_batch(4, /*ramp=*/false, std::chrono::microseconds(500000));
  });
  // First push arms the consumer; it wakes, sees depth 1 < 4 and lingers.
  ASSERT_EQ(q.try_push(0), svc::PushResult::kAccepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // These pushes wake nobody (the linger target is unmet)...
  ASSERT_EQ(q.try_push(1), svc::PushResult::kAccepted);
  ASSERT_EQ(q.try_push(2), svc::PushResult::kAccepted);
  // ...until the batch fills, which releases the whole unit at once.
  ASSERT_EQ(q.try_push(3), svc::PushResult::kAccepted);
  consumer.join();
  ASSERT_EQ(got.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(JobQueue, PopBatchLingerTimeoutDispatchesWhatItHas) {
  svc::JobQueue<int> q(16);
  ASSERT_EQ(q.try_push(7), svc::PushResult::kAccepted);
  // A lone item is not held hostage: the linger timer bounds its wait.
  const auto batch =
      q.pop_batch(4, /*ramp=*/false, std::chrono::microseconds(2000));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], 7);
}

TEST(JobQueue, PopBatchInteractiveArrivalAbortsLinger) {
  svc::JobQueue<int> q(16);
  std::vector<int> got;
  std::thread consumer([&] {
    // Linger far longer than the test: only the interactive abort can
    // release the consumer this fast.
    got = q.pop_batch(8, /*ramp=*/false, std::chrono::microseconds(5000000));
  });
  ASSERT_EQ(q.try_push(10, svc::Priority::kNormal),
            svc::PushResult::kAccepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_EQ(q.try_push(1, svc::Priority::kInteractive),
            svc::PushResult::kAccepted);
  consumer.join();
  // The woken consumer takes the interactive item (highest class, cap 1);
  // the normal item stays queued behind it.
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 1);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop(), 10);
}

// ---- ResultCache ------------------------------------------------------

TEST(ResultCache, LeaderCompletesAndSubsequentLookupsHit) {
  svc::ResultCache cache(16);
  const auto key = svc::JobKey::of(small_spec());
  auto first = cache.lookup_or_begin(key);
  ASSERT_EQ(first.outcome, svc::ResultCache::Outcome::kLeader);
  cache.complete(key, result_with_seconds(1.25));
  EXPECT_DOUBLE_EQ(first.result.get().seconds, 1.25);

  auto second = cache.lookup_or_begin(key);
  EXPECT_EQ(second.outcome, svc::ResultCache::Outcome::kHit);
  EXPECT_DOUBLE_EQ(second.result.get().seconds, 1.25);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, ConcurrentRequestersJoinTheFlight) {
  svc::ResultCache cache(16);
  const auto key = svc::JobKey::of(small_spec());
  auto leader = cache.lookup_or_begin(key);
  ASSERT_EQ(leader.outcome, svc::ResultCache::Outcome::kLeader);
  auto joined = cache.lookup_or_begin(key);
  EXPECT_EQ(joined.outcome, svc::ResultCache::Outcome::kJoined);
  EXPECT_EQ(cache.joins(), 1);
  cache.complete(key, result_with_seconds(2.0));
  EXPECT_DOUBLE_EQ(joined.result.get().seconds, 2.0);
}

TEST(ResultCache, AbortPropagatesToJoinedWaiters) {
  svc::ResultCache cache(16);
  const auto key = svc::JobKey::of(small_spec());
  auto leader = cache.lookup_or_begin(key);
  ASSERT_EQ(leader.outcome, svc::ResultCache::Outcome::kLeader);
  auto joined = cache.lookup_or_begin(key);
  cache.abort(key, std::make_exception_ptr(svc::ServiceError("boom")));
  EXPECT_THROW(joined.result.get(), svc::ServiceError);
  EXPECT_EQ(cache.size(), 0u) << "aborted flights must not be cached";
  // The key is computable again after the abort.
  auto retry = cache.lookup_or_begin(key);
  EXPECT_EQ(retry.outcome, svc::ResultCache::Outcome::kLeader);
  cache.complete(key, result_with_seconds(1.0));
}

TEST(ResultCache, EvictsLeastRecentlyUsedWithinAShard) {
  // Single shard so LRU order is global and deterministic.
  svc::ResultCache cache(3, /*shards=*/1);
  std::vector<svc::JobKey> keys;
  for (int i = 0; i < 4; ++i) {
    auto spec = small_spec();
    spec.job.ngrids = 8 + i;
    keys.push_back(svc::JobKey::of(spec));
  }
  for (int i = 0; i < 3; ++i) {
    auto l = cache.lookup_or_begin(keys[static_cast<std::size_t>(i)]);
    ASSERT_EQ(l.outcome, svc::ResultCache::Outcome::kLeader);
    cache.complete(keys[static_cast<std::size_t>(i)], result_with_seconds(i));
  }
  // Touch key0 so key1 is now the least recently used.
  EXPECT_TRUE(cache.peek(keys[0]).has_value());
  auto l = cache.lookup_or_begin(keys[3]);
  ASSERT_EQ(l.outcome, svc::ResultCache::Outcome::kLeader);
  cache.complete(keys[3], result_with_seconds(3));
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.size(), 3u);
  auto victim = cache.lookup_or_begin(keys[1]);
  EXPECT_EQ(victim.outcome, svc::ResultCache::Outcome::kLeader)
      << "key1 should have been evicted";
  cache.complete(keys[1], result_with_seconds(1));
  EXPECT_TRUE(cache.peek(keys[0]).has_value()) << "key0 was refreshed";
}

TEST(ResultCache, ShardCountNeverExceedsCapacity) {
  svc::ResultCache cache(2, /*shards=*/8);
  EXPECT_LE(cache.shards(), 2);
}

TEST(ResultCache, CostWeightedEvictionKeepsExpensiveResults) {
  // An expensive result (10s of simulated work) must survive a scan of
  // cheap insertions: eviction takes the min-cost entry within the
  // window at the LRU end, so cheap hits never push out a result that
  // took real work to produce.
  svc::ResultCache cache(4, /*shards=*/1);
  auto key_of = [](int i) {
    auto spec = small_spec();
    spec.job.ngrids = 8 + i;
    return svc::JobKey::of(spec);
  };
  const auto expensive = key_of(0);
  ASSERT_EQ(cache.lookup_or_begin(expensive).outcome,
            svc::ResultCache::Outcome::kLeader);
  cache.complete(expensive, result_with_seconds(1.0), /*cost_seconds=*/10.0);

  for (int i = 1; i <= 20; ++i) {
    const auto k = key_of(i);
    ASSERT_EQ(cache.lookup_or_begin(k).outcome,
              svc::ResultCache::Outcome::kLeader);
    cache.complete(k, result_with_seconds(i), /*cost_seconds=*/0.001);
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_TRUE(cache.peek(expensive).has_value())
      << "the 10s result was evicted by 1ms results";
  EXPECT_EQ(cache.evictions(), 17);
}

TEST(ResultCache, UniformCostDegeneratesToExactLru) {
  // With equal costs the window scan must keep strict LRU order (ties
  // resolve toward the LRU end), so plain recency behaviour is
  // unchanged.
  svc::ResultCache cache(2, /*shards=*/1);
  auto key_of = [](int i) {
    auto spec = small_spec();
    spec.job.ngrids = 8 + i;
    return svc::JobKey::of(spec);
  };
  for (int i = 0; i < 3; ++i) {
    const auto k = key_of(i);
    ASSERT_EQ(cache.lookup_or_begin(k).outcome,
              svc::ResultCache::Outcome::kLeader);
    cache.complete(k, result_with_seconds(i), /*cost_seconds=*/1.0);
  }
  EXPECT_FALSE(cache.peek(key_of(0)).has_value()) << "oldest must go first";
  EXPECT_TRUE(cache.peek(key_of(1)).has_value());
  EXPECT_TRUE(cache.peek(key_of(2)).has_value());
}

TEST(ResultCache, OnSettledFiresForCompletionAndAbort) {
  svc::ResultCache cache(16);
  const auto key = svc::JobKey::of(small_spec());
  ASSERT_EQ(cache.lookup_or_begin(key).outcome,
            svc::ResultCache::Outcome::kLeader);
  double seen = 0;
  ASSERT_TRUE(cache.on_settled(key, [&](const core::SimResult* r,
                                        std::exception_ptr err) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(err, nullptr);
    seen = r->seconds;
  }));
  cache.complete(key, result_with_seconds(2.5));
  EXPECT_DOUBLE_EQ(seen, 2.5);
  // Settled flight: no continuation can attach any more.
  EXPECT_FALSE(cache.on_settled(
      key, [](const core::SimResult*, std::exception_ptr) {}));

  auto spec = small_spec();
  spec.job.ngrids = 99;
  const auto key2 = svc::JobKey::of(spec);
  ASSERT_EQ(cache.lookup_or_begin(key2).outcome,
            svc::ResultCache::Outcome::kLeader);
  bool failed = false;
  ASSERT_TRUE(cache.on_settled(key2, [&](const core::SimResult* r,
                                         std::exception_ptr err) {
    EXPECT_EQ(r, nullptr);
    failed = err != nullptr;
  }));
  cache.abort(key2, std::make_exception_ptr(svc::ServiceError("boom")));
  EXPECT_TRUE(failed);
}

// ---- LatencyHistogram -------------------------------------------------

TEST(LatencyHistogram, BucketsAndQuantiles) {
  trace::LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.record(1e-3);
  h.record(10.0);
  EXPECT_EQ(h.count(), 100);
  EXPECT_NEAR(h.mean_seconds(), (99 * 1e-3 + 10.0) / 100.0, 1e-6);
  EXPECT_NEAR(h.max_seconds(), 10.0, 1e-6);
  // p50 lands in the ~1ms bucket (upper bound within 2x), p999 in the
  // 10s outlier's bucket.
  EXPECT_LE(h.quantile(0.5), 2.1e-3);
  EXPECT_GE(h.quantile(0.5), 1e-3);
  EXPECT_GE(h.quantile(0.999), 10.0);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(LatencyHistogram, UnderflowAndOverflowAreCaptured) {
  trace::LatencyHistogram h;
  h.record(1e-9);   // < 1us underflow
  h.record(1e9);    // > max bucket overflow
  h.record(-1.0);   // garbage goes to underflow, never UB
  EXPECT_EQ(h.count(), 3);
}

// ---- Metrics snapshot -------------------------------------------------

TEST(Metrics, SnapshotReportsConsistentCounts) {
  svc::Metrics m;
  m.submitted.store(10);
  m.cache_hits.store(4);
  m.dedup_joined.store(2);
  m.accepted.store(3);
  m.rejected_queue_full.store(1);
  m.note_queue_depth(7);
  m.note_queue_depth(3);  // high water keeps the max
  EXPECT_DOUBLE_EQ(m.hit_ratio(), 4.0 / 9.0);
  EXPECT_EQ(m.queue_depth_high_water(), 7);
  const std::string snap = m.snapshot(/*cache_size=*/5, /*evictions=*/1);
  EXPECT_NE(snap.find("svc.submitted: 10"), std::string::npos) << snap;
  EXPECT_NE(snap.find("svc.rejected_queue_full: 1"), std::string::npos);
  EXPECT_NE(snap.find("svc.cache_size: 5"), std::string::npos);
  EXPECT_NE(snap.find("svc.queue_depth_high_water: 7"), std::string::npos);
}

// ---- SimService end-to-end against the real simulator -----------------

TEST(SimService, RunsARealSimulationAndCachesIt) {
  svc::ServiceConfig cfg;
  cfg.workers = 2;
  svc::SimService service(cfg);
  const auto spec = small_spec();

  auto cold = service.submit(spec);
  ASSERT_EQ(cold.status, svc::SubmitStatus::kAccepted);
  const core::SimResult r1 = cold.result.get();
  EXPECT_GT(r1.seconds, 0.0);
  // Identical to a direct (unserviced) call — the service adds no
  // nondeterminism.
  const core::SimResult direct = core::simulate_job(spec);
  EXPECT_DOUBLE_EQ(r1.seconds, direct.seconds);
  EXPECT_EQ(r1.bytes_sent_total, direct.bytes_sent_total);

  auto hit = service.submit(spec);
  EXPECT_EQ(hit.status, svc::SubmitStatus::kCacheHit);
  EXPECT_DOUBLE_EQ(hit.result.get().seconds, r1.seconds);
  EXPECT_EQ(service.metrics().cache_hits.load(), 1);
  EXPECT_EQ(service.metrics().executed.load(), 1);
}

TEST(SimService, SubmitThenFiresExactlyOncePerOutcome) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  svc::SimService service(cfg);
  const auto spec = small_spec();

  // Cold: the continuation fires on the worker thread with the result.
  std::promise<double> cold;
  auto status = service.submit_then(
      spec, svc::Priority::kNormal,
      [&](const core::SimResult* r, std::exception_ptr err) {
        ASSERT_NE(r, nullptr);
        ASSERT_EQ(err, nullptr);
        cold.set_value(r->seconds);
      });
  EXPECT_EQ(status, svc::SubmitStatus::kAccepted);
  const double seconds = cold.get_future().get();
  EXPECT_GT(seconds, 0.0);

  // Warm: synchronous on the caller's thread, same result.
  bool hit = false;
  status = service.submit_then(
      spec, svc::Priority::kNormal,
      [&](const core::SimResult* r, std::exception_ptr err) {
        ASSERT_NE(r, nullptr);
        ASSERT_EQ(err, nullptr);
        EXPECT_DOUBLE_EQ(r->seconds, seconds);
        hit = true;
      });
  EXPECT_EQ(status, svc::SubmitStatus::kCacheHit);
  EXPECT_TRUE(hit);

  // Rejection: the continuation gets a reasoned ServiceError.
  service.shutdown();
  bool rejected = false;
  status = service.submit_then(
      small_spec(19), svc::Priority::kNormal,
      [&](const core::SimResult* r, std::exception_ptr err) {
        EXPECT_EQ(r, nullptr);
        ASSERT_NE(err, nullptr);
        try {
          std::rethrow_exception(err);
        } catch (const svc::ServiceError& e) {
          EXPECT_EQ(e.reason(), svc::ErrorReason::kRejectedShutdown);
          rejected = true;
        }
      });
  EXPECT_EQ(status, svc::SubmitStatus::kRejectedShutdown);
  EXPECT_TRUE(rejected);
}

TEST(SimService, MeasuredColdCostProtectsExpensiveResults) {
  // execute() weights each cache entry by its measured cold exec time,
  // so a scan of instant results must not evict the one that slept.
  std::atomic<int> expensive_runs{0};
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_capacity = 2;
  cfg.cache_shards = 1;
  cfg.executor = [&](const core::SimJobSpec& s) {
    if (s.job.ngrids == 8) {
      expensive_runs.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    core::SimResult r;
    r.seconds = s.job.ngrids;
    return r;
  };
  svc::SimService service(cfg);
  service.run(small_spec(8));
  for (int i = 1; i <= 10; ++i) service.run(small_spec(8 + i));
  auto warm = service.submit(small_spec(8));
  EXPECT_EQ(warm.status, svc::SubmitStatus::kCacheHit);
  EXPECT_EQ(expensive_runs.load(), 1) << "the expensive result was evicted";
}

TEST(SimService, RunHelperThrowsOnRejection) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  svc::SimService service(cfg);
  service.shutdown();
  EXPECT_THROW(service.run(small_spec()), svc::ServiceError);
}

// ---- TTL / staleness bounds -------------------------------------------

TEST(ResultCacheTtl, ExpiredEntryIsAMissAndRefills) {
  svc::ResultCache cache(8, 1, /*ttl_seconds=*/0.05);
  const auto key = svc::JobKey::of(small_spec());
  auto l1 = cache.lookup_or_begin(key);
  ASSERT_EQ(l1.outcome, svc::ResultCache::Outcome::kLeader);
  cache.complete(key, result_with_seconds(1.0));
  EXPECT_TRUE(cache.peek(key).has_value());

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  // Past the TTL the entry is dropped by the lookup that observes it...
  EXPECT_FALSE(cache.peek(key).has_value());
  EXPECT_EQ(cache.expired(), 1);
  // ...and the next requester becomes the leader and re-fills it.
  auto l2 = cache.lookup_or_begin(key);
  ASSERT_EQ(l2.outcome, svc::ResultCache::Outcome::kLeader);
  cache.complete(key, result_with_seconds(2.0));
  auto warm = cache.peek(key);
  ASSERT_TRUE(warm.has_value());
  EXPECT_DOUBLE_EQ(warm->seconds, 2.0);
}

TEST(ResultCacheTtl, WarmInsertEnforcesTtlFromOriginalWriteTime) {
  svc::ResultCache cache(8, 1, /*ttl_seconds=*/3600);
  const auto key = svc::JobKey::of(small_spec());
  // Produced two hours ago: already past the one-hour TTL on load.
  EXPECT_FALSE(cache.insert_warm(key, result_with_seconds(1.0), 0.1,
                                 trace::unix_seconds() - 7200));
  EXPECT_FALSE(cache.peek(key).has_value());
  // Fresh write time loads fine and serves hits.
  EXPECT_TRUE(cache.insert_warm(key, result_with_seconds(2.0), 0.1,
                                trace::unix_seconds()));
  auto hit = cache.peek(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->seconds, 2.0);

  // Without a TTL, arbitrarily old results are still welcome.
  svc::ResultCache eternal(8, 1);
  EXPECT_TRUE(eternal.insert_warm(key, result_with_seconds(3.0), 0.1, 0.0));
}

// ---- persistent store wired into the service ---------------------------

/// Scratch directory for persistence tests, removed on destruction.
class StoreDir {
 public:
  StoreDir() {
    std::string tmpl = ::testing::TempDir() + "gpawfd_svc_store_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    path_ = ::mkdtemp(buf.data());
  }
  ~StoreDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& dir() const { return path_; }

 private:
  std::string path_;
};

/// A fast deterministic executor that counts how often it actually runs.
svc::ServiceConfig persist_config(const std::string& dir,
                                  std::atomic<int>* runs,
                                  double ttl_seconds = 0) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_dir = dir;
  cfg.cache_ttl_seconds = ttl_seconds;
  cfg.executor = [runs](const core::SimJobSpec& s) {
    if (runs) runs->fetch_add(1);
    core::SimResult r;
    r.seconds = static_cast<double>(s.job.ngrids);
    r.bytes_sent_total = 1000 + s.job.ngrids;
    return r;
  };
  return cfg;
}

TEST(SimServicePersist, SecondServiceWarmStartsFromTheFirstOnesStore) {
  StoreDir store;
  std::atomic<int> runs{0};
  {
    svc::SimService first(persist_config(store.dir(), &runs));
    for (int n : {8, 9, 10}) first.run(small_spec(n));
    first.shutdown();  // drains the write-behind queue to disk
    EXPECT_EQ(first.persister()->written(), 3);
  }
  EXPECT_EQ(runs.load(), 3);

  svc::SimService second(persist_config(store.dir(), &runs));
  second.wait_warm_loaded();  // load runs in the background now
  EXPECT_EQ(second.metrics().warm_loaded.load(), 3);
  EXPECT_EQ(second.metrics().warm_skipped.load(), 0);
  for (int n : {8, 9, 10}) {
    auto t = second.submit(small_spec(n));
    // The acceptance criterion: a store populated by one service yields
    // cache *hits* (counted as such) in the next, with exact results.
    EXPECT_EQ(t.status, svc::SubmitStatus::kCacheHit);
    EXPECT_DOUBLE_EQ(t.result.get().seconds, n);
    EXPECT_EQ(t.result.get().bytes_sent_total, 1000 + n);
  }
  EXPECT_EQ(runs.load(), 3) << "warm start re-ran a simulation";
  EXPECT_EQ(second.metrics().cache_hits.load(), 3);
  EXPECT_EQ(second.metrics().executed.load(), 0);
}

TEST(SimServicePersist, ExpiredStoreRecordsAreSkippedOnWarmLoad) {
  StoreDir dir;
  {
    svc::CacheStore store(svc::CacheStore::path_in(dir.dir()));
    store.recover();
    // One result produced long ago, one produced just now.
    store.append_put(svc::JobKey::of(small_spec(8)).canonical(),
                     result_with_seconds(8.0), 0.1,
                     trace::unix_seconds() - 7200);
    store.append_put(svc::JobKey::of(small_spec(9)).canonical(),
                     result_with_seconds(9.0), 0.1, trace::unix_seconds());
    store.sync();
  }
  std::atomic<int> runs{0};
  svc::SimService service(
      persist_config(dir.dir(), &runs, /*ttl_seconds=*/3600));
  service.wait_warm_loaded();
  EXPECT_EQ(service.metrics().warm_loaded.load(), 1);
  EXPECT_EQ(service.metrics().warm_skipped.load(), 1);
  EXPECT_EQ(service.submit(small_spec(9)).status,
            svc::SubmitStatus::kCacheHit);
  // The stale one is a miss: it re-executes and re-fills.
  service.run(small_spec(8));
  EXPECT_EQ(runs.load(), 1);
}

TEST(SimServicePersist, VersionBumpInvalidatesTheWarmStore) {
  StoreDir dir;
  {
    svc::CacheStore store(svc::CacheStore::path_in(dir.dir()));
    store.recover();
    // A record written by a hypothetical older JobKey::kVersion: its
    // canonical string carries the old prefix, so the warm load must
    // not resurrect it even though the bytes are perfectly valid.
    store.append_put("v0|approach=1|job{stale}", result_with_seconds(1.0),
                     0.1, trace::unix_seconds());
    store.append_put(svc::JobKey::of(small_spec(8)).canonical(),
                     result_with_seconds(8.0), 0.1, trace::unix_seconds());
    store.sync();
  }
  svc::SimService service(persist_config(dir.dir(), nullptr));
  service.wait_warm_loaded();
  EXPECT_EQ(service.metrics().warm_loaded.load(), 1);
  EXPECT_EQ(service.metrics().warm_skipped.load(), 1);
  EXPECT_EQ(service.submit(small_spec(8)).status,
            svc::SubmitStatus::kCacheHit);
}

TEST(SimServicePersist, SubmitThenFiresSynchronouslyOnWarmLoadHit) {
  StoreDir dir;
  {
    svc::CacheStore store(svc::CacheStore::path_in(dir.dir()));
    store.recover();
    store.append_put(svc::JobKey::of(small_spec(8)).canonical(),
                     result_with_seconds(42.0), 0.1, trace::unix_seconds());
    store.sync();
  }
  svc::SimService service(persist_config(dir.dir(), nullptr));
  service.wait_warm_loaded();  // the hit below needs the entry in place
  bool fired = false;
  const auto status = service.submit_then(
      small_spec(8), svc::Priority::kNormal,
      [&](const core::SimResult* r, std::exception_ptr err) {
        ASSERT_NE(r, nullptr);
        ASSERT_EQ(err, nullptr);
        EXPECT_DOUBLE_EQ(r->seconds, 42.0);
        fired = true;
      });
  EXPECT_EQ(status, svc::SubmitStatus::kCacheHit);
  EXPECT_TRUE(fired);  // synchronously, before submit_then returned
}

TEST(SimServicePersist, PersistCountersReconcileInTheCounterMap) {
  StoreDir dir;
  std::atomic<int> runs{0};
  svc::SimService service(persist_config(dir.dir(), &runs));
  for (int n = 8; n < 14; ++n) service.run(small_spec(n));
  service.shutdown();  // quiescence: the write-behind queue is drained

  const auto counters = service.metrics().counter_map();
  EXPECT_EQ(counters.at("svc.persist_enqueued"),
            counters.at("svc.persist_written") +
                counters.at("svc.persist_dropped"));
  // Every executed job was handed to the persister, exactly once.
  EXPECT_EQ(counters.at("svc.persist_enqueued"),
            counters.at("svc.executed"));
  EXPECT_EQ(counters.at("svc.persist_written"), 6);
  EXPECT_GE(counters.at("svc.persist_flushes"), 1);
  EXPECT_EQ(counters.at("svc.warm_loaded"), 0);  // the store started empty

  // The snapshot exporter carries the same counters (plus the cache
  // expiry gauge) so operators see the reconciliation inputs.
  const std::string snap = service.metrics_snapshot();
  EXPECT_NE(snap.find("svc.persist_written: 6"), std::string::npos) << snap;
  EXPECT_NE(snap.find("svc.cache_expired: 0"), std::string::npos) << snap;
}

// ---- batched dispatch (SimService over pop_batch) ---------------------

TEST(SvcBatch, BatchedJobsReconcileWithAccepted) {
  svc::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 128;
  cfg.batch_max = 8;
  cfg.batch_ramp = true;
  cfg.batch_linger_us = 200;
  cfg.reserve_interactive_lane = false;
  std::atomic<int> runs{0};
  cfg.executor = [&runs](const core::SimJobSpec& s) {
    runs.fetch_add(1);
    core::SimResult r;
    r.seconds = static_cast<double>(s.job.ngrids);
    return r;
  };
  svc::SimService service(cfg);
  std::vector<svc::Ticket> tickets;
  for (int n = 8; n < 40; ++n)
    tickets.push_back(service.submit(small_spec(n)));
  for (auto& t : tickets) {
    ASSERT_FALSE(t.rejected());
    t.result.get();
  }
  service.shutdown();

  const auto counters = service.metrics().counter_map();
  // Every accepted job left the queue inside exactly one dispatch unit.
  EXPECT_EQ(counters.at("svc.batched_jobs"), counters.at("svc.accepted"));
  EXPECT_GE(counters.at("svc.batches"), 1);
  EXPECT_LE(counters.at("svc.batches"), counters.at("svc.batched_jobs"));
  EXPECT_EQ(runs.load(), 32);
  // The batch_size histogram saw every dispatch unit.
  EXPECT_EQ(service.metrics().batch_size.count(),
            counters.at("svc.batches"));
}

TEST(SvcBatch, InteractiveLaneIsReservedWhenConfigured) {
  svc::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.batch_max = 4;
  cfg.reserve_interactive_lane = true;
  cfg.executor = [](const core::SimJobSpec& s) {
    core::SimResult r;
    r.seconds = static_cast<double>(s.job.ngrids);
    return r;
  };
  svc::SimService service(cfg);
  EXPECT_TRUE(service.has_interactive_lane());
  // Both classes complete even with one worker pinned to the lane.
  EXPECT_DOUBLE_EQ(
      service.run(small_spec(8), svc::Priority::kInteractive).seconds, 8.0);
  EXPECT_DOUBLE_EQ(
      service.run(small_spec(9), svc::Priority::kBatch).seconds, 9.0);

  // The lane needs batching and >= 2 workers; otherwise it is not taken.
  svc::ServiceConfig solo = cfg;
  solo.workers = 1;
  EXPECT_FALSE(svc::SimService(solo).has_interactive_lane());
  svc::ServiceConfig unbatched = cfg;
  unbatched.batch_max = 1;
  EXPECT_FALSE(svc::SimService(unbatched).has_interactive_lane());
}

TEST(SimServicePersist, WarmLoadOverlapsConcurrentSubmits) {
  // The startup double buffer: the constructor returns while the
  // reader/decoder threads still stream the store into the cache.
  // Submits racing that load must stay correct — a miss on a
  // still-loading key executes, insert_warm never clobbers a fresher
  // live result — and the warm counters must still reconcile. (This is
  // the TSAN lane's target: lookups vs. the background load.)
  constexpr int kWarm = 64;
  StoreDir dir;
  {
    svc::CacheStore store(svc::CacheStore::path_in(dir.dir()));
    store.recover();
    for (int i = 0; i < kWarm; ++i)
      store.append_put(svc::JobKey::of(small_spec(100 + i)).canonical(),
                       result_with_seconds(100.0 + i), 0.1,
                       trace::unix_seconds());
    store.sync();
  }
  std::atomic<int> runs{0};
  svc::SimService service(persist_config(dir.dir(), &runs));
  std::vector<std::thread> lookups;
  for (int t = 0; t < 4; ++t) {
    lookups.emplace_back([&, t] {
      for (int i = t; i < kWarm; i += 4) {
        // Warm key: either hits the already-loaded entry or executes.
        EXPECT_DOUBLE_EQ(service.run(small_spec(100 + i)).seconds,
                         100.0 + i);
        // Fresh key: never in the store, always executes.
        EXPECT_DOUBLE_EQ(service.run(small_spec(1000 + i)).seconds,
                         1000.0 + i);
      }
    });
  }
  for (auto& t : lookups) t.join();
  service.wait_warm_loaded();
  // Every live store record was either loaded or deliberately skipped
  // (e.g. lost to a fresher result a racing lookup produced first).
  EXPECT_EQ(service.metrics().warm_loaded.load() +
                service.metrics().warm_skipped.load(),
            kWarm);
  // All fresh keys ran; warm keys ran only if they beat the load.
  EXPECT_GE(runs.load(), kWarm);
  EXPECT_LE(runs.load(), 2 * kWarm);
}

// ---- peer cache-fill ingest (the cluster replication path) -------------

TEST(SimServiceFill, AcceptedFillServesAsAWarmHit) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  std::atomic<int> runs{0};
  cfg.executor = [&](const core::SimJobSpec&) {
    runs.fetch_add(1);
    return core::SimResult{};
  };
  svc::SimService service(cfg);

  const auto spec = small_spec();
  EXPECT_TRUE(service.ingest_fill(svc::JobKey::of(spec).canonical(),
                                  result_with_seconds(77.0), 0.5,
                                  trace::unix_seconds()));
  // The peer's result serves locally without a flight: a cache hit, not
  // an execution — exactly the warm-load contract.
  auto t = service.submit(spec);
  EXPECT_EQ(t.status, svc::SubmitStatus::kCacheHit);
  EXPECT_DOUBLE_EQ(t.result.get().seconds, 77.0);
  EXPECT_EQ(runs.load(), 0);
  EXPECT_EQ(service.metrics().fills_received.load(), 1);
  EXPECT_EQ(service.metrics().fills_accepted.load(), 1);
  EXPECT_EQ(service.metrics().fills_rejected.load(), 0);
}

TEST(SimServiceFill, VersionGateAndStalenessAreRejectedNotIngested) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  svc::SimService service(cfg);
  const std::string canonical = svc::JobKey::of(small_spec()).canonical();
  const double now = trace::unix_seconds();

  // A canonical string from a different codec version must never be
  // parsed, let alone cached.
  EXPECT_FALSE(
      service.ingest_fill("v999|garbage", result_with_seconds(1.0), 0.1, now));
  // Newest-wins: an older write never displaces a newer one...
  EXPECT_TRUE(
      service.ingest_fill(canonical, result_with_seconds(2.0), 0.1, now));
  EXPECT_FALSE(service.ingest_fill(canonical, result_with_seconds(3.0), 0.1,
                                   now - 10));
  // ...and an equal-time replay is a no-op too (idempotent replication).
  EXPECT_FALSE(
      service.ingest_fill(canonical, result_with_seconds(4.0), 0.1, now));
  EXPECT_DOUBLE_EQ(service.submit(small_spec()).result.get().seconds, 2.0);

  // The ledger balances: received == accepted + rejected.
  EXPECT_EQ(service.metrics().fills_received.load(), 4);
  EXPECT_EQ(service.metrics().fills_accepted.load(), 1);
  EXPECT_EQ(service.metrics().fills_rejected.load(), 3);
}

TEST(SimServiceFill, AcceptedFillIsWrittenBehindToTheStore) {
  StoreDir store;
  const std::string canonical = svc::JobKey::of(small_spec()).canonical();
  {
    svc::SimService service(persist_config(store.dir(), nullptr));
    service.wait_warm_loaded();
    EXPECT_TRUE(service.ingest_fill(canonical, result_with_seconds(55.0), 0.5,
                                    trace::unix_seconds()));
    service.shutdown();  // drain the write-behind queue
    EXPECT_EQ(service.persister()->written(), 1);
  }
  // A restart of this replica still holds the peer's result: replication
  // is durable, not just resident.
  std::atomic<int> runs{0};
  svc::SimService revived(persist_config(store.dir(), &runs));
  revived.wait_warm_loaded();
  EXPECT_EQ(revived.metrics().warm_loaded.load(), 1);
  auto t = revived.submit(small_spec());
  EXPECT_EQ(t.status, svc::SubmitStatus::kCacheHit);
  EXPECT_DOUBLE_EQ(t.result.get().seconds, 55.0);
  EXPECT_EQ(runs.load(), 0);
}

}  // namespace
}  // namespace gpawfd
