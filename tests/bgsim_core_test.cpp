// Event loop, coroutine tasks, events, latches, barriers, mutexes.
#include <gtest/gtest.h>

#include <vector>

#include "bgsim/event_loop.hpp"
#include "bgsim/task.hpp"

namespace gpawfd::bgsim {
namespace {

TEST(SimTimeTest, Conversions) {
  EXPECT_EQ(from_seconds(1.0), 1'000'000'000);
  EXPECT_EQ(from_us(2.5), 2'500);
  EXPECT_DOUBLE_EQ(to_seconds(1'500'000'000), 1.5);
  EXPECT_EQ(transfer_time(0, 1e9), 0);
  // 1000 bytes at 1 GB/s = 1000 ns (+1 rounding guard).
  EXPECT_EQ(transfer_time(1000, 1e9), 1001);
}

TEST(EventLoop, FiresInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, TiesFireInInsertionOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    loop.schedule_at(5, [&order, i] { order.push_back(i); });
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventLoop, NestedSchedulingAdvancesTime) {
  EventLoop loop;
  SimTime inner_fired = -1;
  loop.schedule_at(100, [&] {
    loop.schedule_after(50, [&] { inner_fired = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(inner_fired, 150);
}

TEST(EventLoop, PastSchedulingThrows) {
  EventLoop loop;
  loop.schedule_at(100, [&] {
    EXPECT_THROW(loop.schedule_at(50, [] {}), gpawfd::Error);
  });
  loop.run();
}

TEST(EventLoop, CallbackExceptionPropagatesFromRun) {
  EventLoop loop;
  loop.schedule_at(1, [] { throw gpawfd::Error("boom"); });
  EXPECT_THROW(loop.run(), gpawfd::Error);
}

SimTask delay_chain(EventLoop& loop, std::vector<SimTime>& stamps) {
  co_await loop.delay(10);
  stamps.push_back(loop.now());
  co_await loop.delay(20);
  stamps.push_back(loop.now());
}

TEST(SimTaskTest, DelaysAccumulate) {
  EventLoop loop;
  std::vector<SimTime> stamps;
  delay_chain(loop, stamps);
  loop.run();
  EXPECT_EQ(stamps, (std::vector<SimTime>{10, 30}));
}

SimTask two_phase(EventLoop& loop, Event& ev, std::vector<int>& log, int id,
                  SimTime work) {
  co_await loop.delay(work);
  log.push_back(id);
  ev.set();
}

SimTask waiter_task(Event& ev, std::vector<int>& log, int id) {
  co_await ev.wait();
  log.push_back(id);
}

TEST(EventTest, WaitersResumeWhenSet) {
  EventLoop loop;
  Event ev(loop);
  std::vector<int> log;
  waiter_task(ev, log, 100);
  waiter_task(ev, log, 200);
  two_phase(loop, ev, log, 1, 50);
  loop.run();
  EXPECT_EQ(log, (std::vector<int>{1, 100, 200}));
  EXPECT_TRUE(ev.is_set());
}

TEST(EventTest, WaitOnSetEventDoesNotSuspend) {
  EventLoop loop;
  Event ev(loop);
  ev.set();
  std::vector<int> log;
  waiter_task(ev, log, 7);  // runs to completion synchronously
  EXPECT_EQ(log, (std::vector<int>{7}));
}

SimTask arrive_later(EventLoop& loop, CountdownLatch& latch, SimTime t) {
  co_await loop.delay(t);
  latch.arrive();
}

SimTask await_latch(CountdownLatch& latch, EventLoop& loop, SimTime& when) {
  co_await latch.wait();
  when = loop.now();
}

TEST(CountdownLatchTest, ReleasesAfterAllArrivals) {
  EventLoop loop;
  CountdownLatch latch(loop, 3);
  SimTime released = -1;
  await_latch(latch, loop, released);
  arrive_later(loop, latch, 10);
  arrive_later(loop, latch, 99);
  arrive_later(loop, latch, 50);
  loop.run();
  EXPECT_EQ(released, 99);  // the slowest arrival
  EXPECT_TRUE(latch.released());
}

TEST(CountdownLatchTest, ZeroCountIsReleasedImmediately) {
  EventLoop loop;
  CountdownLatch latch(loop, 0);
  EXPECT_TRUE(latch.released());
}

TEST(CountdownLatchTest, OverArrivalThrows) {
  EventLoop loop;
  CountdownLatch latch(loop, 1);
  latch.arrive();
  EXPECT_THROW(latch.arrive(), gpawfd::Error);
}

SimTask barrier_worker(EventLoop& loop, SimBarrier& b, SimTime work,
                       std::vector<SimTime>& out) {
  co_await loop.delay(work);
  co_await b.arrive_and_wait();
  out.push_back(loop.now());
}

TEST(SimBarrierTest, AllPartiesLeaveTogetherAfterSlowest) {
  EventLoop loop;
  const SimTime cost = 900;
  SimBarrier b(loop, 3, cost);
  std::vector<SimTime> out;
  barrier_worker(loop, b, 100, out);
  barrier_worker(loop, b, 5000, out);
  barrier_worker(loop, b, 2000, out);
  loop.run();
  ASSERT_EQ(out.size(), 3u);
  for (SimTime t : out) EXPECT_EQ(t, 5000 + cost);
}

TEST(SimBarrierTest, IsCyclic) {
  EventLoop loop;
  SimBarrier b(loop, 2, 10);
  std::vector<SimTime> out;
  auto worker = [](EventLoop& l, SimBarrier& bar, SimTime work,
                   std::vector<SimTime>& o) -> SimTask {
    for (int i = 0; i < 3; ++i) {
      co_await l.delay(work);
      co_await bar.arrive_and_wait();
    }
    o.push_back(l.now());
  };
  worker(loop, b, 10, out);
  worker(loop, b, 30, out);
  loop.run();
  ASSERT_EQ(out.size(), 2u);
  // Three rounds, each gated by the slower worker: 3 * (30 + 10 cost).
  EXPECT_EQ(out[0], out[1]);
  EXPECT_EQ(out[0], 3 * (30 + 10));
}

SimTask mutex_user(EventLoop& loop, SimMutex& m, SimTime hold,
                   std::vector<std::pair<SimTime, SimTime>>& spans) {
  co_await m.acquire();
  const SimTime t0 = loop.now();
  co_await loop.delay(hold);
  spans.emplace_back(t0, loop.now());
  m.release();
}

TEST(SimMutexTest, CriticalSectionsNeverOverlap) {
  EventLoop loop;
  SimMutex m(loop);
  std::vector<std::pair<SimTime, SimTime>> spans;
  for (int i = 0; i < 4; ++i) mutex_user(loop, m, 100, spans);
  loop.run();
  ASSERT_EQ(spans.size(), 4u);
  for (std::size_t i = 1; i < spans.size(); ++i)
    EXPECT_GE(spans[i].first, spans[i - 1].second);
  EXPECT_EQ(spans.back().second, 400);  // fully serialized
}

SimTask failing_task(EventLoop& loop) {
  co_await loop.delay(5);
  throw gpawfd::Error("task exploded");
}

TEST(SimTaskTest, ExceptionSurfacesThroughRun) {
  EventLoop loop;
  failing_task(loop);
  EXPECT_THROW(loop.run(), gpawfd::Error);
}

}  // namespace
}  // namespace gpawfd::bgsim
