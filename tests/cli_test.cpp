#include <gtest/gtest.h>

#include "common/cli.hpp"

namespace gpawfd {
namespace {

CliParser make() {
  CliParser p;
  p.flag("cores", "4096", "core count")
      .flag("name", "hybrid", "approach name")
      .flag("ratio", "0.5", "a double")
      .flag("verbose", "false", "a boolean");
  return p;
}

void parse(CliParser& p, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  p.parse(static_cast<int>(args.size()), args.data());
}

TEST(Cli, DefaultsApply) {
  CliParser p = make();
  parse(p, {});
  EXPECT_EQ(p.get_int("cores"), 4096);
  EXPECT_EQ(p.get("name"), "hybrid");
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 0.5);
  EXPECT_FALSE(p.get_bool("verbose"));
  EXPECT_FALSE(p.is_set("cores"));
}

TEST(Cli, EqualsSyntax) {
  CliParser p = make();
  parse(p, {"--cores=128", "--name=flat", "--ratio=1.25"});
  EXPECT_EQ(p.get_int("cores"), 128);
  EXPECT_EQ(p.get("name"), "flat");
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 1.25);
  EXPECT_TRUE(p.is_set("cores"));
}

TEST(Cli, SpaceSyntaxAndBareBoolean) {
  CliParser p = make();
  parse(p, {"--cores", "64", "--verbose"});
  EXPECT_EQ(p.get_int("cores"), 64);
  EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(Cli, ScientificNotationDouble) {
  CliParser p = make();
  parse(p, {"--ratio=4.25e8"});
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 4.25e8);
}

TEST(Cli, HelpFlag) {
  CliParser p = make();
  parse(p, {"--help"});
  EXPECT_TRUE(p.help_requested());
  const std::string u = p.usage("prog");
  EXPECT_NE(u.find("--cores"), std::string::npos);
  EXPECT_NE(u.find("core count"), std::string::npos);
}

TEST(Cli, UnknownFlagThrows) {
  CliParser p = make();
  EXPECT_THROW(parse(p, {"--bogus=1"}), Error);
}

TEST(Cli, MalformedValuesThrow) {
  CliParser p = make();
  parse(p, {"--cores=twelve", "--ratio=abc", "--verbose=maybe"});
  EXPECT_THROW(p.get_int("cores"), Error);
  EXPECT_THROW(p.get_double("ratio"), Error);
  EXPECT_THROW(p.get_bool("verbose"), Error);
}

TEST(Cli, PositionalArgumentRejected) {
  CliParser p = make();
  EXPECT_THROW(parse(p, {"positional"}), Error);
}

TEST(Cli, DuplicateDeclarationThrows) {
  CliParser p;
  p.flag("x", "1", "h");
  EXPECT_THROW(p.flag("x", "2", "h"), Error);
}

TEST(Cli, RangeCheckedGettersAcceptTheBounds) {
  CliParser p = make();
  parse(p, {"--cores=1", "--ratio=1.0"});
  EXPECT_EQ(p.get_int_in("cores", 1, 8192), 1);
  EXPECT_DOUBLE_EQ(p.get_double_in("ratio", 0.0, 1.0), 1.0);
  CliParser q = make();
  parse(q, {});
  EXPECT_EQ(q.get_int_in("cores", 1, 4096), 4096);  // default in range
}

TEST(Cli, RangeCheckedGettersRejectOutOfRange) {
  CliParser p = make();
  parse(p, {"--cores=0", "--ratio=1.5"});
  EXPECT_THROW(p.get_int_in("cores", 1, 8192), Error);
  EXPECT_THROW(p.get_double_in("ratio", 0.0, 1.0), Error);
  // Negative values against a non-negative range (the --batch-max=-1
  // / --pipeline-window=-3 class of typo).
  CliParser q = make();
  parse(q, {"--cores=-3"});
  EXPECT_THROW(q.get_int_in("cores", 0, 8192), Error);
}

TEST(Cli, RangeErrorNamesFlagAndBounds) {
  CliParser p = make();
  parse(p, {"--cores=0"});
  try {
    p.get_int_in("cores", 1, 4096);
    FAIL() << "expected a range error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--cores"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[1, 4096]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("got 0"), std::string::npos) << msg;
  }
}

TEST(Cli, RangeCheckedGetterStillRejectsMalformedValues) {
  CliParser p = make();
  parse(p, {"--cores=twelve"});
  EXPECT_THROW(p.get_int_in("cores", 1, 8192), Error);
}

TEST(Cli, BooleanSpellings) {
  CliParser p = make();
  parse(p, {"--verbose=on"});
  EXPECT_TRUE(p.get_bool("verbose"));
  CliParser q = make();
  parse(q, {"--verbose=0"});
  EXPECT_FALSE(q.get_bool("verbose"));
}

}  // namespace
}  // namespace gpawfd
