// Torus network and message fabric model tests.
#include <gtest/gtest.h>

#include "bgsim/fabric.hpp"
#include "bgsim/torus.hpp"

namespace gpawfd::bgsim {
namespace {

MachineConfig cfg() { return MachineConfig::bluegene_p(); }

TEST(TorusDims, MostCubicFactorization) {
  EXPECT_EQ(torus_dims(1), (Vec3{1, 1, 1}));
  EXPECT_EQ(torus_dims(8), (Vec3{2, 2, 2}));
  EXPECT_EQ(torus_dims(512), (Vec3{8, 8, 8}));
  EXPECT_EQ(torus_dims(4096), (Vec3{16, 16, 16}));
  EXPECT_EQ(torus_dims(2048), (Vec3{8, 16, 16}));
  EXPECT_EQ(torus_dims(12), (Vec3{2, 2, 3}));
}

TEST(TorusNetwork, MeshBelow512Torus512AndAbove) {
  EventLoop loop;
  TorusNetwork small(loop, cfg(), {8, 8, 4});    // 256 nodes
  TorusNetwork large(loop, cfg(), {8, 8, 8});    // 512 nodes
  EXPECT_FALSE(small.is_torus());
  EXPECT_TRUE(large.is_torus());
}

TEST(TorusNetwork, HopCountsTorusWrap) {
  EventLoop loop;
  TorusNetwork net(loop, cfg(), {8, 8, 8});  // torus
  const int a = net.node_at({0, 0, 0});
  EXPECT_EQ(net.hops(a, net.node_at({1, 0, 0})), 1);
  EXPECT_EQ(net.hops(a, net.node_at({7, 0, 0})), 1);   // wraps
  EXPECT_EQ(net.hops(a, net.node_at({4, 0, 0})), 4);   // farthest
  EXPECT_EQ(net.hops(a, net.node_at({3, 2, 7})), 3 + 2 + 1);
  EXPECT_EQ(net.hops(a, a), 0);
}

TEST(TorusNetwork, HopCountsMeshNoWrap) {
  EventLoop loop;
  TorusNetwork net(loop, cfg(), {8, 4, 4});  // 128 nodes: mesh
  const int a = net.node_at({0, 0, 0});
  // "Periodic neighbour" is 7 hops away on a mesh.
  EXPECT_EQ(net.hops(a, net.node_at({7, 0, 0})), 7);
  EXPECT_EQ(net.hops(a, net.node_at({1, 0, 0})), 1);
}

TEST(TorusNetwork, SingleTransferTimeMatchesModel) {
  EventLoop loop;
  MachineConfig c = cfg();
  TorusNetwork net(loop, c, {8, 8, 8});
  const std::int64_t bytes = 1 << 20;
  const SimTime done =
      net.submit(net.node_at({0, 0, 0}), net.node_at({1, 0, 0}), bytes);
  const SimTime expected = c.injection_latency + c.hop_latency +
                           transfer_time(bytes, c.effective_link_bandwidth());
  EXPECT_EQ(done, expected);
  EXPECT_EQ(net.total_link_bytes(), bytes);
}

TEST(TorusNetwork, ContentionSerializesSharedLink) {
  EventLoop loop;
  MachineConfig c = cfg();
  TorusNetwork net(loop, c, {8, 8, 8});
  const int src = net.node_at({0, 0, 0});
  const int dst = net.node_at({1, 0, 0});
  const std::int64_t bytes = 1 << 20;
  const SimTime t1 = net.submit(src, dst, bytes);
  const SimTime t2 = net.submit(src, dst, bytes);
  const SimTime ser = transfer_time(bytes, c.effective_link_bandwidth());
  EXPECT_GE(t2, t1 + ser);  // second message queues behind the first
}

TEST(TorusNetwork, DisjointLinksDoNotContend) {
  EventLoop loop;
  MachineConfig c = cfg();
  TorusNetwork net(loop, c, {8, 8, 8});
  const int a = net.node_at({0, 0, 0});
  const std::int64_t bytes = 1 << 20;
  // Six directions out of one node are six distinct links.
  const SimTime t1 = net.submit(a, net.node_at({1, 0, 0}), bytes);
  const SimTime t2 = net.submit(a, net.node_at({7, 0, 0}), bytes);
  const SimTime t3 = net.submit(a, net.node_at({0, 1, 0}), bytes);
  const SimTime t4 = net.submit(a, net.node_at({0, 7, 0}), bytes);
  const SimTime t5 = net.submit(a, net.node_at({0, 0, 1}), bytes);
  const SimTime t6 = net.submit(a, net.node_at({0, 0, 7}), bytes);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t3);
  EXPECT_EQ(t1, t4);
  EXPECT_EQ(t1, t5);
  EXPECT_EQ(t1, t6);
}

TEST(TorusNetwork, MultiHopAddsLatencyAndBooksEveryLink) {
  EventLoop loop;
  MachineConfig c = cfg();
  TorusNetwork net(loop, c, {8, 8, 8});
  const std::int64_t bytes = 4096;
  const SimTime far =
      net.submit(net.node_at({0, 0, 0}), net.node_at({4, 0, 0}), bytes);
  EXPECT_EQ(far, c.injection_latency + 4 * c.hop_latency +
                     transfer_time(bytes, c.effective_link_bandwidth()));
  // A message using the first link of that route now queues.
  const SimTime blocked =
      net.submit(net.node_at({0, 0, 0}), net.node_at({1, 0, 0}), bytes);
  EXPECT_GT(blocked, far - 3 * c.hop_latency);
}

TEST(TorusNetwork, LoopbackIsFastAndUsesNoLinks) {
  EventLoop loop;
  MachineConfig c = cfg();
  TorusNetwork net(loop, c, {8, 8, 8});
  const int n = net.node_at({3, 3, 3});
  const std::int64_t bytes = 1 << 20;
  const SimTime done = net.submit(n, n, bytes);
  EXPECT_EQ(done, c.loopback_latency + transfer_time(bytes, c.loopback_bandwidth));
  EXPECT_EQ(net.total_link_bytes(), 0);
  EXPECT_EQ(net.node_link_bytes(n), 0);
}

TEST(TorusNetwork, MeshWrapTrafficIsSlowerThanTorus) {
  // The same "periodic neighbour" exchange on a mesh pays the cross-
  // machine route — the reason the paper needs >= 512-node partitions.
  const std::int64_t bytes = 100'000;
  EventLoop loop1;
  TorusNetwork mesh(loop1, cfg(), {8, 4, 4});
  const SimTime mesh_t =
      mesh.submit(mesh.node_at({0, 0, 0}), mesh.node_at({7, 0, 0}), bytes);
  EventLoop loop2;
  TorusNetwork torus(loop2, cfg(), {8, 8, 8});
  const SimTime torus_t = torus.submit(torus.node_at({0, 0, 0}),
                                       torus.node_at({7, 0, 0}), bytes);
  EXPECT_GT(mesh_t, torus_t);
}

// ---- Fabric ---------------------------------------------------------

SimTask recv_then_stamp(EventLoop& loop, Fabric& f, int dst, int src, int tag,
                        std::int64_t bytes, SimTime& when) {
  EventPtr ev = f.post_recv(dst, src, tag, bytes);
  co_await ev->wait();
  when = loop.now();
}

TEST(Fabric, SendMatchesPostedRecv) {
  EventLoop loop;
  TorusNetwork net(loop, cfg(), {2, 2, 2});
  Fabric f(loop, net, {0, 1, 2, 3, 4, 5, 6, 7});
  SimTime got = -1;
  recv_then_stamp(loop, f, 1, 0, 42, 1024, got);
  f.post_send(0, 1, 42, 1024);
  loop.run();
  EXPECT_GT(got, 0);
  EXPECT_EQ(f.rank_bytes_sent(0), 1024);
  EXPECT_EQ(f.rank_messages_sent(0), 1);
  EXPECT_EQ(f.total_bytes_sent(), 1024);
}

TEST(Fabric, RecvAfterArrivalCompletesImmediately) {
  EventLoop loop;
  TorusNetwork net(loop, cfg(), {2, 2, 2});
  Fabric f(loop, net, {0, 1, 2, 3, 4, 5, 6, 7});
  f.post_send(0, 1, 7, 512);
  SimTime arrival_flushed = -1;
  // Drain the delivery first.
  loop.run();
  EventPtr ev = f.post_recv(1, 0, 7, 512);
  EXPECT_TRUE(ev->is_set());
  (void)arrival_flushed;
}

TEST(Fabric, TagAndSourceMatchingSeparatesStreams) {
  EventLoop loop;
  TorusNetwork net(loop, cfg(), {2, 2, 2});
  Fabric f(loop, net, {0, 1, 2, 3, 4, 5, 6, 7});
  SimTime got_a = -1, got_b = -1;
  recv_then_stamp(loop, f, 2, 0, 1, 64, got_a);
  recv_then_stamp(loop, f, 2, 1, 1, 64, got_b);
  f.post_send(1, 2, 1, 64);
  f.post_send(0, 2, 1, 64);
  loop.run();
  EXPECT_GT(got_a, 0);
  EXPECT_GT(got_b, 0);
}

TEST(Fabric, TooSmallRecvThrowsAtMatch) {
  EventLoop loop;
  TorusNetwork net(loop, cfg(), {2, 2, 2});
  Fabric f(loop, net, {0, 1, 2, 3, 4, 5, 6, 7});
  f.post_send(0, 1, 0, 4096);
  loop.run();
  EXPECT_THROW(f.post_recv(1, 0, 0, 16), gpawfd::Error);
}

TEST(Fabric, VirtualModePlacementSharesNodes) {
  EventLoop loop;
  TorusNetwork net(loop, cfg(), {2, 1, 1});
  // 8 ranks on 2 nodes: ranks 0-3 on node 0 (virtual mode).
  Fabric f(loop, net, {0, 0, 0, 0, 1, 1, 1, 1});
  EXPECT_EQ(f.node_of_rank(3), 0);
  EXPECT_EQ(f.node_of_rank(4), 1);
  SimTime got = -1;
  recv_then_stamp(loop, f, 1, 0, 0, 4096, got);
  f.post_send(0, 1, 0, 4096);  // same node: loopback, no link bytes
  loop.run();
  EXPECT_GT(got, 0);
  EXPECT_EQ(net.total_link_bytes(), 0);
  EXPECT_EQ(f.rank_bytes_sent(0), 4096);  // MPI-level accounting still counts
}

// ---- Collective (tree) network model --------------------------------

TEST(TreeNetwork, DepthGrowsLogarithmically) {
  EXPECT_EQ(MachineConfig::tree_depth(1), 1);
  EXPECT_EQ(MachineConfig::tree_depth(2), 1);
  EXPECT_EQ(MachineConfig::tree_depth(512), 9);
  EXPECT_EQ(MachineConfig::tree_depth(4096), 12);
}

TEST(TreeNetwork, AllreduceScalesWithDepthAndBytes) {
  const MachineConfig c = cfg();
  // Latency-dominated small reduction: grows with node count.
  EXPECT_LT(c.allreduce_time(512, 8), c.allreduce_time(4096, 8));
  // Bandwidth-dominated large reduction: grows with payload.
  EXPECT_LT(c.allreduce_time(512, 1 << 10), c.allreduce_time(512, 1 << 20));
  // An allreduce costs about two broadcasts' worth of tree traversal.
  EXPECT_NEAR(static_cast<double>(c.allreduce_time(512, 4096)),
              2.0 * static_cast<double>(c.bcast_time(512, 4096)), 2.0);
}

TEST(TreeNetwork, BarrierIsNodeCountIndependent) {
  const MachineConfig c = cfg();
  EXPECT_EQ(c.barrier_time(2), c.barrier_time(4096));
  EXPECT_GT(c.barrier_time(2), 0);
}

TEST(TreeNetwork, CollectivesBeatTorusForGlobalOps) {
  // The point of the dedicated tree: a small global reduction over 4096
  // nodes is far cheaper than even a single cross-machine torus message.
  const MachineConfig c = cfg();
  EventLoop loop;
  TorusNetwork net(loop, c, {16, 16, 16});
  const SimTime across =
      net.submit(net.node_at({0, 0, 0}), net.node_at({8, 8, 8}), 8);
  // Allreduce visits every node yet stays within a small multiple.
  EXPECT_LT(c.allreduce_time(4096, 8), 100 * across);
}

}  // namespace
}  // namespace gpawfd::bgsim
