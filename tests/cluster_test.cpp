// Tests for the cluster layer. Ring properties: ownership balance
// across 3-16 backends (max/mean bounded by vnode smoothing), removal
// minimality (< 2/N of keys move when a node departs, and every moved
// key was owned by the departed node), preference-list distinctness.
// Router end-to-end over real loopback backends: consistent routing
// with peer cache-fill replication, failover of a killed backend's
// keys onto the replica with zero lost jobs, the replica serving the
// dead owner's hot set from its fill-populated cache, health state
// transitions through the prober, fill relay, queue admission, and
// shutdown semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/ring.hpp"
#include "cluster/router.hpp"
#include "common/check.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "svc/job_key.hpp"
#include "svc/service.hpp"

namespace gpawfd {
namespace {

core::SimJobSpec small_spec(int ngrids = 8, int cores = 4) {
  core::SimJobSpec spec;
  spec.approach = sched::Approach::kHybridMultiple;
  spec.job.grid_shape = Vec3::cube(24);
  spec.job.ngrids = ngrids;
  spec.opt = sched::Optimizations::all_on(2);
  spec.total_cores = cores;
  spec.cores_per_node = 4;
  return spec;
}

std::vector<std::string> node_ids(int n) {
  std::vector<std::string> ids;
  for (int i = 0; i < n; ++i)
    ids.push_back("10.0.0." + std::to_string(i) + ":7450");
  return ids;
}

// ---- hash ring ---------------------------------------------------------

TEST(HashRing, OwnerIsDeterministicAndHeadsThePreferenceList) {
  const cluster::HashRing ring(node_ids(5), 64);
  const cluster::HashRing twin(node_ids(5), 64);
  for (int k = 0; k < 200; ++k) {
    const std::string key = "job-" + std::to_string(k);
    EXPECT_EQ(ring.owner(key), twin.owner(key));
    const auto prefs = ring.preference(key, 3);
    ASSERT_EQ(prefs.size(), 3u);
    EXPECT_EQ(prefs[0], ring.owner(key));
  }
}

TEST(HashRing, PreferenceListsAreDistinctAndCoverEveryNode) {
  const cluster::HashRing ring(node_ids(6), 32);
  for (int k = 0; k < 100; ++k) {
    // Asking for more replicas than nodes returns each node exactly once.
    const auto prefs =
        ring.preference("key-" + std::to_string(k), 64);
    ASSERT_EQ(prefs.size(), 6u);
    std::vector<int> sorted = prefs;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 6; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  }
}

TEST(HashRing, OwnershipStaysBalancedFromThreeToSixteenNodes) {
  // Vnode smoothing bounds the arcs: over a 20k-key sample the busiest
  // node must stay within 1.6x the mean share and nobody may starve.
  for (const int n : {3, 4, 8, 16}) {
    const cluster::HashRing ring(node_ids(n), 128);
    const auto fractions = ring.ownership_fractions(20000);
    ASSERT_EQ(fractions.size(), static_cast<std::size_t>(n));
    const double mean = 1.0 / static_cast<double>(n);
    for (const double f : fractions) {
      EXPECT_LE(f, 1.6 * mean) << n << " nodes";
      EXPECT_GE(f, 0.4 * mean) << n << " nodes";
    }
  }
}

TEST(HashRing, NodeDepartureRemapsOnlyTheDepartedNodesKeys) {
  const int n = 5;
  const std::vector<std::string> all = node_ids(n);
  const std::string removed = all[3];
  std::vector<std::string> remaining;
  for (const std::string& id : all)
    if (id != removed) remaining.push_back(id);

  const cluster::HashRing before(all, 64);
  const cluster::HashRing after(remaining, 64);
  const int samples = 20000;
  int moved = 0;
  for (int k = 0; k < samples; ++k) {
    const std::string key = "remap-key-" + std::to_string(k);
    const std::string& owner_before = before.node_id(before.owner(key));
    const std::string& owner_after = after.node_id(after.owner(key));
    if (owner_before == removed) {
      ++moved;
    } else {
      // Minimality: a surviving node's keys never move.
      EXPECT_EQ(owner_before, owner_after) << key;
    }
  }
  // The departed node owned roughly 1/N of the space; consistent
  // hashing must not move more than twice that.
  EXPECT_GT(moved, 0);
  EXPECT_LT(static_cast<double>(moved) / samples, 2.0 / n);
}

TEST(HashRing, RejectsDegenerateShapes) {
  EXPECT_THROW(cluster::HashRing({}, 64), Error);
  EXPECT_THROW(cluster::HashRing(node_ids(3), 0), Error);
}

TEST(HashRing, KeyHashMatchesBetweenCallSites) {
  // The fill dedup set and the ring walk share this hash; a drift would
  // silently break dedup.
  EXPECT_EQ(cluster::HashRing::key_hash("v1|approach=2|edge=24"),
            cluster::HashRing::key_hash("v1|approach=2|edge=24"));
  EXPECT_NE(cluster::HashRing::key_hash("a"), cluster::HashRing::key_hash("b"));
}

// ---- router over real backends -----------------------------------------

struct TestBackend {
  std::unique_ptr<svc::SimService> service;
  std::unique_ptr<net::Server> server;
};

std::vector<TestBackend> make_backends(
    int n, const std::function<core::SimResult(const core::SimJobSpec&)>&
               executor = {}) {
  std::vector<TestBackend> backends;
  for (int i = 0; i < n; ++i) {
    svc::ServiceConfig cfg;
    cfg.workers = 2;
    if (executor) cfg.executor = executor;
    TestBackend b;
    b.service = std::make_unique<svc::SimService>(cfg);
    b.server = std::make_unique<net::Server>(*b.service);
    backends.push_back(std::move(b));
  }
  return backends;
}

cluster::RouterConfig router_config(const std::vector<TestBackend>& backends) {
  cluster::RouterConfig cfg;
  for (const TestBackend& b : backends)
    cfg.backends.push_back({"127.0.0.1", b.server->port()});
  cfg.retry.max_attempts = 4;
  cfg.retry.initial_backoff_seconds = 0.001;
  cfg.health_period_seconds = 0;  // tests drive probe_all() themselves
  cfg.health_fail_threshold = 1;
  return cfg;
}

/// Poll until `pred` holds or ~2s elapse (fills are fire-and-forget, so
/// assertions about their arrival need a deadline, not a sleep).
bool eventually(const std::function<bool()>& pred) {
  for (int i = 0; i < 200; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

TEST(Router, RoutesEveryJobAndReplicatesToTheNextReplica) {
  auto backends = make_backends(3);
  cluster::Router router(router_config(backends));
  net::Server front(router);
  net::ClientConfig ccfg;
  ccfg.port = front.port();
  net::Client client(ccfg);

  const int jobs = 12;
  for (int i = 0; i < jobs; ++i)
    EXPECT_NO_THROW(client.submit(small_spec(8 + i)));

  const cluster::RouterMetrics& m = router.metrics();
  EXPECT_EQ(m.jobs.load(), jobs);
  EXPECT_EQ(m.ok.load(), jobs);
  EXPECT_EQ(m.gave_up.load(), 0);
  // Every distinct key was pushed to its replica exactly once, and the
  // pushes actually landed (kFill ingested, not just sent).
  EXPECT_EQ(m.fills_sent.load(), jobs);
  EXPECT_TRUE(eventually([&] {
    std::int64_t accepted = 0;
    for (const TestBackend& b : backends)
      accepted += b.service->metrics().fills_accepted.load();
    return accepted == jobs;
  }));
  // Per-backend routed counters cover all traffic (the rebalance view).
  std::int64_t routed = 0;
  for (int b = 0; b < 3; ++b) routed += m.backend(b).routed.load();
  EXPECT_EQ(routed, m.attempts.load());
  // The work itself spread out: with 12 distinct keys on a 64-vnode
  // ring, no single backend served everything.
  std::int64_t busiest = 0;
  for (int b = 0; b < 3; ++b)
    busiest = std::max(busiest, m.backend(b).ok.load());
  EXPECT_LT(busiest, jobs);
}

TEST(Router, RepeatOfTheSameKeySuppressesDuplicateFills) {
  auto backends = make_backends(3);
  cluster::Router router(router_config(backends));
  net::Server front(router);
  net::ClientConfig ccfg;
  ccfg.port = front.port();
  net::Client client(ccfg);

  for (int rep = 0; rep < 5; ++rep) client.submit(small_spec(8));
  const cluster::RouterMetrics& m = router.metrics();
  EXPECT_EQ(m.ok.load(), 5);
  EXPECT_EQ(m.fills_sent.load(), 1);
  EXPECT_EQ(m.fills_suppressed.load(), 4);
}

TEST(Router, KilledBackendFailsOverToTheReplicaWithZeroLostJobs) {
  auto backends = make_backends(3);
  cluster::Router router(router_config(backends));
  net::Server front(router);
  net::ClientConfig ccfg;
  ccfg.port = front.port();
  net::Client client(ccfg);

  // Find a spec owned by backend 0 so the kill provably hits its owner.
  int victim_ngrids = -1;
  for (int i = 8; i < 64; ++i) {
    const std::string canonical =
        svc::JobKey::of(small_spec(i)).canonical();
    if (router.ring().owner(canonical) == 0) {
      victim_ngrids = i;
      break;
    }
  }
  ASSERT_GE(victim_ngrids, 0);

  backends[0].server->stop();  // in-flight replies drop, port dies

  // The owner is still marked alive (no prober): the first forward
  // fails kConnectionLost, marks it down, and the retry lands on the
  // replica — the client just sees a slightly slower success.
  EXPECT_NO_THROW(client.submit(small_spec(victim_ngrids)));
  const cluster::RouterMetrics& m = router.metrics();
  EXPECT_EQ(m.ok.load(), 1);
  EXPECT_EQ(m.gave_up.load(), 0);
  EXPECT_GE(m.retried.load(), 1);
  EXPECT_FALSE(router.backend_alive(0));
  EXPECT_EQ(router.alive_backends(), 2);

  // With the victim marked down, later keys it owned route straight to
  // the replica: no further retries accrue.
  const std::int64_t retried_before = m.retried.load();
  for (int i = victim_ngrids + 1; i < victim_ngrids + 40; ++i)
    EXPECT_NO_THROW(client.submit(small_spec(i)));
  EXPECT_EQ(m.retried.load(), retried_before);
  EXPECT_EQ(m.gave_up.load(), 0);
}

TEST(Router, ReplicaServesTheDeadOwnersHotSetFromItsFilledCache) {
  auto backends = make_backends(3);
  cluster::Router router(router_config(backends));
  net::Server front(router);
  net::ClientConfig ccfg;
  ccfg.port = front.port();
  net::Client client(ccfg);

  const auto spec = small_spec(8);
  const std::string canonical = svc::JobKey::of(spec).canonical();
  const auto prefs = router.ring().preference(canonical, 2);
  const std::size_t owner = static_cast<std::size_t>(prefs[0]);
  const std::size_t replica = static_cast<std::size_t>(prefs[1]);

  const core::SimResult first = client.submit(spec);
  EXPECT_EQ(backends[owner].service->metrics().executed.load(), 1);
  // The fill reaches the replica's cache without the replica executing.
  ASSERT_TRUE(eventually([&] {
    return backends[replica].service->metrics().fills_accepted.load() == 1;
  }));
  EXPECT_EQ(backends[replica].service->metrics().executed.load(), 0);

  backends[owner].server->stop();
  const core::SimResult again = client.submit(spec);
  EXPECT_DOUBLE_EQ(again.seconds, first.seconds);
  // Served from the replica's fill-populated cache: nobody re-simulated.
  EXPECT_EQ(backends[replica].service->metrics().executed.load(), 0);
  EXPECT_GE(backends[replica].service->metrics().cache_hits.load(), 1);
}

TEST(Router, ProberMarksDownAfterThresholdAndResurrectsOnSuccess) {
  auto backends = make_backends(2);
  cluster::RouterConfig cfg = router_config(backends);
  cfg.health_fail_threshold = 2;
  cluster::Router router(cfg);

  router.probe_all();
  EXPECT_TRUE(router.backend_alive(0));
  EXPECT_TRUE(router.backend_alive(1));
  EXPECT_EQ(router.metrics().probes.load(), 2);

  const std::uint16_t port = backends[1].server->port();
  backends[1].server->stop();
  router.probe_all();
  EXPECT_TRUE(router.backend_alive(1)) << "one failure is below threshold";
  router.probe_all();
  EXPECT_FALSE(router.backend_alive(1));
  EXPECT_EQ(router.metrics().marked_down.load(), 1);

  // Same port, fresh server over the same service: one good probe
  // resurrects the node — the ring never changed, so nothing reshuffles.
  net::ServerConfig scfg;
  scfg.port = port;
  net::Server revived(*backends[1].service, scfg);
  router.probe_all();
  EXPECT_TRUE(router.backend_alive(1));
  EXPECT_EQ(router.metrics().recovered.load(), 1);
}

TEST(Router, ClientPushedFillIsRelayedToTheOwner) {
  auto backends = make_backends(3);
  cluster::Router router(router_config(backends));
  net::Server front(router);
  net::ClientConfig ccfg;
  ccfg.port = front.port();
  net::Client client(ccfg);

  net::FillRecord record;
  record.key = svc::JobKey::of(small_spec(8)).canonical();
  record.result.seconds = 42.0;
  record.cost_seconds = 0.5;
  record.write_time = 1e9;
  EXPECT_NO_THROW(client.fill_async(record).get());

  EXPECT_EQ(router.metrics().fills_forwarded.load(), 1);
  const std::size_t owner = static_cast<std::size_t>(
      router.ring().preference(record.key, 1)[0]);
  EXPECT_EQ(backends[owner].service->metrics().fills_accepted.load(), 1);
}

TEST(Router, BoundedQueueShedsOverloadedWhenForwardersAreBusy) {
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  auto backends = make_backends(2, [opened](const core::SimJobSpec&) {
    opened.wait();
    return core::SimResult{};
  });
  cluster::RouterConfig cfg = router_config(backends);
  cfg.forwarders = 1;
  cfg.queue_capacity = 1;
  cluster::Router router(cfg);

  std::mutex mu;
  std::condition_variable cv;
  std::map<net::WireStatus, int> statuses;
  int settled = 0;
  auto done = [&](net::WireStatus s, std::vector<std::uint8_t>) {
    std::lock_guard lock(mu);
    ++statuses[s];
    ++settled;
    cv.notify_all();
  };

  // First task occupies the lone forwarder (parked on the gated
  // executor), second fills the one-slot queue, the rest must shed.
  router.handle_submit(svc::JobKey::of(small_spec(8)).canonical(),
                       svc::Priority::kNormal, done);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (int i = 0; i < 6; ++i)
    router.handle_submit(svc::JobKey::of(small_spec(9 + i)).canonical(),
                         svc::Priority::kNormal, done);
  {
    std::unique_lock lock(mu);
    cv.wait_for(lock, std::chrono::seconds(1),
                [&] { return statuses[net::WireStatus::kOverloaded] == 5; });
    EXPECT_EQ(statuses[net::WireStatus::kOverloaded], 5);
  }
  EXPECT_EQ(router.metrics().rejected_overload.load(), 5);

  gate.set_value();
  std::unique_lock lock(mu);
  ASSERT_TRUE(
      cv.wait_for(lock, std::chrono::seconds(5), [&] { return settled == 7; }));
  EXPECT_EQ(statuses[net::WireStatus::kOk], 2);
}

TEST(Router, ShutdownRejectsNewWorkAndIsIdempotent) {
  auto backends = make_backends(2);
  cluster::Router router(router_config(backends));
  router.shutdown();
  router.shutdown();  // idempotent

  net::WireStatus status = net::WireStatus::kOk;
  router.handle_submit(svc::JobKey::of(small_spec()).canonical(),
                       svc::Priority::kNormal,
                       [&](net::WireStatus s, std::vector<std::uint8_t>) {
                         status = s;
                       });
  EXPECT_EQ(status, net::WireStatus::kRejectedShutdown);
  EXPECT_EQ(router.metrics().rejected_shutdown.load(), 1);
}

TEST(Router, MetricsSnapshotCarriesRingShapeAndPerBackendRows) {
  auto backends = make_backends(3);
  cluster::Router router(router_config(backends));
  const auto counters = router.metrics().counter_map();
  EXPECT_EQ(counters.at("cluster.ring.nodes"), 3);
  EXPECT_EQ(counters.at("cluster.ring.vnodes"), 64);
  EXPECT_TRUE(counters.count("cluster.b0.routed"));
  EXPECT_TRUE(counters.count("cluster.b2.fills"));
  const std::string snapshot = router.metrics_snapshot();
  EXPECT_NE(snapshot.find("cluster.jobs: 0"), std::string::npos);
  EXPECT_NE(snapshot.find("cluster.b1.retried: 0"), std::string::npos);
}

}  // namespace
}  // namespace gpawfd
