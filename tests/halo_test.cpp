// Direct HaloExchanger tests: ghost contents after batched, serialized
// and double-buffered exchanges, on periodic and open boundaries.
#include <gtest/gtest.h>

#include "core/halo.hpp"
#include "core/testing.hpp"
#include "mp/thread_comm.hpp"

namespace gpawfd::core {
namespace {

using grid::Array3D;

/// Each rank fills its sub-grids from global coordinates, exchanges, and
/// checks every ghost equals the (wrapped) global value.
void check_ghosts(const Array3D<double>& a, const grid::Box3& box,
                  Vec3 gshape, int grid_id, bool periodic, int rank) {
  const int g = a.ghost();
  const Vec3 n = a.shape();
  for (std::int64_t x = -g; x < n.x + g; ++x)
    for (std::int64_t y = -g; y < n.y + g; ++y)
      for (std::int64_t z = -g; z < n.z + g; ++z) {
        const Vec3 local{x, y, z};
        if (in_bounds(local, n)) continue;  // interior
        // Only face ghosts are filled (edges/corners unused by the
        // stencil): skip points outside in more than one dimension.
        int outside = 0;
        for (int d = 0; d < 3; ++d)
          if (local[d] < 0 || local[d] >= n[d]) ++outside;
        if (outside != 1) continue;
        Vec3 global = box.lo + local;
        bool off_world = false;
        for (int d = 0; d < 3; ++d) {
          if (global[d] < 0 || global[d] >= gshape[d]) {
            if (!periodic)
              off_world = true;
            else
              global[d] = (global[d] + gshape[d]) % gshape[d];
          }
        }
        const double want =
            off_world ? 0.0 : testing::test_value(grid_id, global);
        ASSERT_DOUBLE_EQ(a.at(local), want)
            << "rank " << rank << " ghost " << local;
      }
}

class HaloTest : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(HaloTest, BatchedExchangeFillsAllFaceGhosts) {
  const auto [ranks, periodic] = GetParam();
  const Vec3 gshape{12, 10, 8};
  const auto decomp = grid::Decomposition::best(gshape, ranks, 2);
  const bool per = periodic;
  mp::ThreadWorld world(ranks);
  world.run([&](mp::ThreadComm& comm) {
    const Vec3 coords = decomp.coords_of(comm.rank());
    const grid::Box3 box = decomp.local_box(coords);
    constexpr int kGrids = 3;
    std::vector<Array3D<double>> grids(kGrids);
    std::vector<Array3D<double>*> ptrs;
    for (int g = 0; g < kGrids; ++g) {
      grids[static_cast<std::size_t>(g)] = Array3D<double>(box.shape(), 2);
      testing::fill_local(grids[static_cast<std::size_t>(g)], box, g);
      ptrs.push_back(&grids[static_cast<std::size_t>(g)]);
    }
    HaloExchanger<double> ex(comm, decomp, coords,
                             face_neighbors(decomp, coords), per, 0);
    ex.begin(ptrs, 0);
    ex.finish(ptrs, 0);
    for (int g = 0; g < kGrids; ++g)
      check_ghosts(grids[static_cast<std::size_t>(g)], box, gshape, g, per,
                   comm.rank());
  });
}

TEST_P(HaloTest, SerializedExchangeMatchesBatched) {
  const auto [ranks, periodic] = GetParam();
  const Vec3 gshape{12, 10, 8};
  const auto decomp = grid::Decomposition::best(gshape, ranks, 2);
  const bool per = periodic;
  mp::ThreadWorld world(ranks);
  world.run([&](mp::ThreadComm& comm) {
    const Vec3 coords = decomp.coords_of(comm.rank());
    const grid::Box3 box = decomp.local_box(coords);
    Array3D<double> a(box.shape(), 2);
    testing::fill_local(a, box, 7);
    HaloExchanger<double> ex(comm, decomp, coords,
                             face_neighbors(decomp, coords), per, 0);
    ex.exchange_serialized(a);
    check_ghosts(a, box, gshape, 7, per, comm.rank());
  });
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndBoundaries, HaloTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 6, 8),
                       ::testing::Bool()));

TEST(HaloExchangerTest, DoubleBufferedSlotsAreIndependent) {
  const Vec3 gshape{8, 8, 8};
  const auto decomp = grid::Decomposition::best(gshape, 2, 2);
  mp::ThreadWorld world(2);
  world.run([&](mp::ThreadComm& comm) {
    const Vec3 coords = decomp.coords_of(comm.rank());
    const grid::Box3 box = decomp.local_box(coords);
    Array3D<double> a(box.shape(), 2), b(box.shape(), 2);
    testing::fill_local(a, box, 0);
    testing::fill_local(b, box, 1);
    Array3D<double>* pa[1] = {&a};
    Array3D<double>* pb[1] = {&b};
    HaloExchanger<double> ex(comm, decomp, coords,
                             face_neighbors(decomp, coords), true, 0);
    // Pipeline: both slots in flight at once.
    ex.begin(std::span<Array3D<double>* const>(pa, 1), 0);
    ex.begin(std::span<Array3D<double>* const>(pb, 1), 1);
    ex.finish(std::span<Array3D<double>* const>(pa, 1), 0);
    ex.finish(std::span<Array3D<double>* const>(pb, 1), 1);
    check_ghosts(a, box, gshape, 0, true, comm.rank());
    check_ghosts(b, box, gshape, 1, true, comm.rank());
  });
}

TEST(HaloExchangerTest, ReusingActiveSlotThrows) {
  const auto decomp = grid::Decomposition::best({8, 8, 8}, 1, 2);
  mp::ThreadWorld world(1);
  world.run([&](mp::ThreadComm& comm) {
    Array3D<double> a({8, 8, 8}, 2);
    Array3D<double>* pa[1] = {&a};
    HaloExchanger<double> ex(comm, decomp, {0, 0, 0},
                             face_neighbors(decomp, {0, 0, 0}), true, 0);
    ex.begin(std::span<Array3D<double>* const>(pa, 1), 0);
    EXPECT_THROW(ex.begin(std::span<Array3D<double>* const>(pa, 1), 0),
                 gpawfd::Error);
    ex.finish(std::span<Array3D<double>* const>(pa, 1), 0);
    EXPECT_THROW(ex.finish(std::span<Array3D<double>* const>(pa, 1), 0),
                 gpawfd::Error);
  });
}

}  // namespace
}  // namespace gpawfd::core
