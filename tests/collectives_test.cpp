#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "mp/thread_comm.hpp"

namespace gpawfd::mp {
namespace {

class CollectivesTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesTest, BarrierSeparatesPhases) {
  const int p = GetParam();
  ThreadWorld world(p);
  std::atomic<int> phase1_count{0};
  std::atomic<bool> violated{false};
  world.run([&](ThreadComm& c) {
    phase1_count.fetch_add(1);
    c.barrier();
    // After the barrier every rank must have completed phase 1.
    if (phase1_count.load() != c.size()) violated.store(true);
  });
  EXPECT_FALSE(violated.load());
}

TEST_P(CollectivesTest, BcastFromEveryRoot) {
  const int p = GetParam();
  ThreadWorld world(p);
  world.run([&](ThreadComm& c) {
    for (int root = 0; root < c.size(); ++root) {
      std::vector<int> data(4, c.rank() == root ? root * 11 : -1);
      c.bcast(std::as_writable_bytes(std::span<int>(data)), root);
      for (int v : data) EXPECT_EQ(v, root * 11);
      c.barrier();
    }
  });
}

TEST_P(CollectivesTest, ReduceSumToEveryRoot) {
  const int p = GetParam();
  ThreadWorld world(p);
  world.run([&](ThreadComm& c) {
    const int n = c.size();
    for (int root = 0; root < n; ++root) {
      std::vector<double> in{static_cast<double>(c.rank()),
                             1.0};
      std::vector<double> out(2, -999.0);
      c.reduce_sum(in, out, root);
      if (c.rank() == root) {
        EXPECT_DOUBLE_EQ(out[0], n * (n - 1) / 2.0);
        EXPECT_DOUBLE_EQ(out[1], n);
      }
      c.barrier();
    }
  });
}

TEST_P(CollectivesTest, AllreduceSumIdenticalEverywhere) {
  const int p = GetParam();
  ThreadWorld world(p);
  world.run([&](ThreadComm& c) {
    const double r = static_cast<double>(c.rank() + 1);
    std::vector<double> in{r, r * r};
    std::vector<double> out(2);
    c.allreduce_sum(in, out);
    const int n = c.size();
    EXPECT_DOUBLE_EQ(out[0], n * (n + 1) / 2.0);
    double sq = 0;
    for (int i = 1; i <= n; ++i) sq += static_cast<double>(i) * i;
    EXPECT_DOUBLE_EQ(out[1], sq);
    EXPECT_DOUBLE_EQ(c.allreduce_sum(1.0), static_cast<double>(n));
  });
}

TEST_P(CollectivesTest, AllgatherOrdersByRank) {
  const int p = GetParam();
  ThreadWorld world(p);
  world.run([&](ThreadComm& c) {
    std::vector<int> mine{c.rank(), c.rank() * 2};
    std::vector<int> all(static_cast<std::size_t>(2 * c.size()));
    c.allgather(std::as_bytes(std::span<const int>(mine)),
                std::as_writable_bytes(std::span<int>(all)));
    for (int r = 0; r < c.size(); ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(2 * r)], r);
      EXPECT_EQ(all[static_cast<std::size_t>(2 * r + 1)], 2 * r);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectivesTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST(Collectives, RepeatedBarriersDoNotDeadlock) {
  ThreadWorld world(6);
  world.run([](ThreadComm& c) {
    for (int i = 0; i < 50; ++i) c.barrier();
  });
}

TEST(Collectives, LargeBcastPayload) {
  ThreadWorld world(4);
  world.run([](ThreadComm& c) {
    std::vector<double> data(1 << 16);
    if (c.rank() == 2)
      std::iota(data.begin(), data.end(), 0.0);
    c.bcast(std::as_writable_bytes(std::span<double>(data)), 2);
    EXPECT_DOUBLE_EQ(data.front(), 0.0);
    EXPECT_DOUBLE_EQ(data.back(), static_cast<double>(data.size() - 1));
  });
}

}  // namespace
}  // namespace gpawfd::mp
