#include <gtest/gtest.h>

#include <complex>

#include "common/rng.hpp"
#include "grid/array3d.hpp"
#include "grid/box.hpp"

namespace gpawfd::grid {
namespace {

TEST(Box3Test, ShapeVolumeContains) {
  Box3 b{{1, 2, 3}, {4, 6, 8}};
  EXPECT_EQ(b.shape(), (Vec3{3, 4, 5}));
  EXPECT_EQ(b.volume(), 60);
  EXPECT_FALSE(b.empty());
  EXPECT_TRUE(b.contains({1, 2, 3}));
  EXPECT_FALSE(b.contains({4, 2, 3}));
  EXPECT_TRUE((Box3{{0, 0, 0}, {0, 1, 1}}).empty());
}

TEST(Box3Test, Intersection) {
  Box3 a{{0, 0, 0}, {4, 4, 4}};
  Box3 b{{2, 2, 2}, {6, 6, 6}};
  EXPECT_EQ(intersect(a, b), (Box3{{2, 2, 2}, {4, 4, 4}}));
  Box3 c{{5, 5, 5}, {6, 6, 6}};
  EXPECT_TRUE(intersect(a, c).empty());
}

TEST(Array3DTest, ShapeAndStrides) {
  Array3D<double> a({3, 4, 5}, 2);
  EXPECT_EQ(a.shape(), (Vec3{3, 4, 5}));
  EXPECT_EQ(a.storage_shape(), (Vec3{7, 8, 9}));
  EXPECT_EQ(a.ghost(), 2);
  EXPECT_EQ(a.interior_points(), 60);
  EXPECT_EQ(a.stride_x(), 72);
  EXPECT_EQ(a.stride_y(), 9);
}

TEST(Array3DTest, InteriorPointerMatchesAt) {
  Array3D<double> a({3, 4, 5}, 1);
  a.at(0, 0, 0) = 42.0;
  a.at(1, 2, 3) = 7.0;
  EXPECT_EQ(a.interior()[0], 42.0);
  EXPECT_EQ(a.interior()[1 * a.stride_x() + 2 * a.stride_y() + 3], 7.0);
}

TEST(Array3DTest, GhostIndexing) {
  Array3D<double> a({2, 2, 2}, 2);
  a.at(-2, 0, 0) = 1.0;
  a.at(1, 1, 3) = 2.0;  // high-z ghost
  EXPECT_EQ(a.at(-2, 0, 0), 1.0);
  EXPECT_EQ(a.at(1, 1, 3), 2.0);
}

TEST(Array3DTest, FillGhostsLeavesInterior) {
  Array3D<double> a({3, 3, 3}, 2);
  a.fill(5.0);
  a.fill_ghosts(-1.0);
  a.for_each_interior([](Vec3, double& v) { EXPECT_EQ(v, 5.0); });
  EXPECT_EQ(a.at(-1, 0, 0), -1.0);
  EXPECT_EQ(a.at(3, 1, 1), -1.0);
  EXPECT_EQ(a.at(0, -2, 2), -1.0);
}

TEST(FaceCodec, FacePointCounts) {
  Array3D<double> a({3, 4, 5}, 2);
  EXPECT_EQ(face_points(a, 0), 2 * 4 * 5);
  EXPECT_EQ(face_points(a, 1), 2 * 3 * 5);
  EXPECT_EQ(face_points(a, 2), 2 * 3 * 4);
}

TEST(FaceCodec, PackUnpackRoundTripBetweenArrays) {
  // Simulate the exchange between two neighbours along x: the high slab of
  // `left` becomes the low ghost of `right`.
  const Vec3 n{4, 3, 5};
  Array3D<double> left(n, 2), right(n, 2);
  Rng rng(1);
  left.for_each_interior([&](Vec3, double& v) { v = rng.next_double(); });

  AlignedVector<double> buf(static_cast<std::size_t>(face_points(left, 0)));
  pack_face(left, Face{0, 1}, std::span<double>(buf.data(), buf.size()));
  unpack_ghost(right, Face{0, 0}, std::span<const double>(buf.data(), buf.size()));

  for (std::int64_t j = 0; j < 2; ++j)  // ghost slab rows
    for (std::int64_t y = 0; y < n.y; ++y)
      for (std::int64_t z = 0; z < n.z; ++z)
        EXPECT_EQ(right.at(j - 2, y, z), left.at(n.x - 2 + j, y, z));
}

TEST(FaceCodec, LocalPeriodicFillWrapsAllDims) {
  const Vec3 n{4, 5, 6};
  Array3D<double> a(n, 2);
  int counter = 0;
  a.for_each_interior([&](Vec3, double& v) { v = ++counter; });
  local_periodic_fill(a);

  // Ghosts must equal the periodically wrapped interior point.
  for (int d = 0; d < 3; ++d) {
    for (std::int64_t k = 1; k <= 2; ++k) {
      Vec3 lo_ghost{1, 1, 1}, hi_ghost{1, 1, 1};
      lo_ghost[d] = -k;
      hi_ghost[d] = n[d] - 1 + k;
      Vec3 lo_wrap = lo_ghost, hi_wrap = hi_ghost;
      lo_wrap[d] = n[d] - k;
      hi_wrap[d] = k - 1;
      EXPECT_EQ(a.at(lo_ghost), a.at(lo_wrap)) << "dim " << d << " k " << k;
      EXPECT_EQ(a.at(hi_ghost), a.at(hi_wrap)) << "dim " << d << " k " << k;
    }
  }
}

TEST(FaceCodec, ComplexElements) {
  using C = std::complex<double>;
  Array3D<C> a({3, 3, 3}, 1), b({3, 3, 3}, 1);
  a.for_each_interior([](Vec3 p, C& v) {
    v = C(static_cast<double>(p.x), static_cast<double>(p.z));
  });
  AlignedVector<C> buf(static_cast<std::size_t>(face_points(a, 2)));
  pack_face(a, Face{2, 1}, std::span<C>(buf.data(), buf.size()));
  unpack_ghost(b, Face{2, 0}, std::span<const C>(buf.data(), buf.size()));
  EXPECT_EQ(b.at(1, 1, -1), (C{1.0, 2.0}));
}

TEST(FaceCodec, SizeMismatchThrows) {
  Array3D<double> a({3, 3, 3}, 1);
  AlignedVector<double> buf(5);  // wrong size (needs 9)
  EXPECT_THROW(pack_face(a, Face{0, 0}, std::span<double>(buf.data(), buf.size())),
               gpawfd::Error);
  EXPECT_THROW(unpack_ghost(a, Face{0, 0}, std::span<const double>(buf.data(), buf.size())),
               gpawfd::Error);
}

TEST(Array3DTest, ZeroGhostArrayWorks) {
  Array3D<double> a({2, 2, 2}, 0);
  EXPECT_EQ(a.storage_shape(), (Vec3{2, 2, 2}));
  a.at(1, 1, 1) = 3.0;
  EXPECT_EQ(a.at(1, 1, 1), 3.0);
}

}  // namespace
}  // namespace gpawfd::grid
