#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "sched/plan.hpp"

namespace gpawfd::sched {
namespace {

JobConfig small_job() {
  JobConfig j;
  j.grid_shape = Vec3::cube(24);
  j.ngrids = 32;
  return j;
}

TEST(MakeBatches, SumsToTotalAndRespectsCap) {
  for (int grids : {0, 1, 7, 8, 32, 100}) {
    for (int batch : {1, 3, 8, 128}) {
      for (bool ramp : {false, true}) {
        const auto b = make_batches(grids, batch, ramp);
        EXPECT_EQ(std::accumulate(b.begin(), b.end(), 0), grids);
        for (int s : b) {
          EXPECT_GE(s, 1);
          EXPECT_LE(s, batch);
        }
      }
    }
  }
}

TEST(MakeBatches, RampHalvesFirstBatch) {
  const auto b = make_batches(32, 8, true);
  EXPECT_EQ(b.front(), 4);  // the paper's "128 reduced to 64" rule
  EXPECT_EQ(b, (std::vector<int>{4, 8, 8, 8, 4}));
  const auto nb = make_batches(32, 8, false);
  EXPECT_EQ(nb, (std::vector<int>{8, 8, 8, 8}));
}

TEST(MakeBatches, RampAppliesAtExactBatchMultiple) {
  // grids == batch: without the ramp there would be a single batch and
  // no overlap at all.
  EXPECT_EQ(make_batches(8, 8, true), (std::vector<int>{4, 4}));
  EXPECT_EQ(make_batches(6, 8, true), (std::vector<int>{6}));  // < batch
}

TEST(ApproachNames, AllDistinct) {
  std::set<std::string> names;
  for (Approach a :
       {Approach::kFlatOriginal, Approach::kFlatOptimized,
        Approach::kHybridMultiple, Approach::kHybridMasterOnly,
        Approach::kFlatOptimizedSubgroups})
    names.insert(to_string(a));
  EXPECT_EQ(names.size(), 5u);
}

TEST(ApproachTraits, SameSubsetRequirement) {
  EXPECT_TRUE(satisfies_same_subset_requirement(Approach::kFlatOriginal));
  EXPECT_TRUE(satisfies_same_subset_requirement(Approach::kHybridMultiple));
  EXPECT_FALSE(
      satisfies_same_subset_requirement(Approach::kFlatOptimizedSubgroups));
}

TEST(RunPlan, FlatUsesOneRankPerCore) {
  const auto p = RunPlan::make(Approach::kFlatOptimized, small_job(),
                               Optimizations::all_on(8), 32, 4);
  EXPECT_EQ(p.nranks(), 32);
  EXPECT_EQ(p.threads_per_rank(), 1);
  EXPECT_EQ(p.comm_streams_per_rank(), 1);
  EXPECT_EQ(p.nodes(), 8);
  EXPECT_EQ(p.decomp().ranks(), 32);
}

TEST(RunPlan, HybridUsesOneRankPerNode) {
  const auto p = RunPlan::make(Approach::kHybridMultiple, small_job(),
                               Optimizations::all_on(8), 32, 4);
  EXPECT_EQ(p.nranks(), 8);
  EXPECT_EQ(p.threads_per_rank(), 4);
  EXPECT_EQ(p.comm_streams_per_rank(), 4);
  EXPECT_EQ(p.decomp().ranks(), 8);  // 4x coarser than flat
}

TEST(RunPlan, MasterOnlyHasOneCommStream) {
  const auto p = RunPlan::make(Approach::kHybridMasterOnly, small_job(),
                               Optimizations::all_on(8), 32, 4);
  EXPECT_EQ(p.nranks(), 8);
  EXPECT_EQ(p.threads_per_rank(), 4);
  EXPECT_EQ(p.comm_streams_per_rank(), 1);
}

TEST(RunPlan, SubgroupsPartitionNodeDeepWithRankPerCore) {
  const auto p = RunPlan::make(Approach::kFlatOptimizedSubgroups,
                               small_job(), Optimizations::all_on(8), 32, 4);
  EXPECT_EQ(p.nranks(), 32);
  EXPECT_EQ(p.threads_per_rank(), 1);
  EXPECT_EQ(p.decomp().ranks(), 8);  // node-deep like hybrid
  // Ranks 0..3 share the same cell but own disjoint grid subsets.
  EXPECT_EQ(p.coords_of_rank(0), p.coords_of_rank(3));
  const auto g0 = p.grids_of_stream(0, 0);
  const auto g1 = p.grids_of_stream(1, 0);
  std::set<int> all(g0.begin(), g0.end());
  for (int g : g1) EXPECT_EQ(all.count(g), 0u);
}

TEST(RunPlan, HybridThreadsPartitionGridsExactly) {
  const auto p = RunPlan::make(Approach::kHybridMultiple, small_job(),
                               Optimizations::all_on(8), 32, 4);
  std::set<int> seen;
  for (int t = 0; t < 4; ++t) {
    for (int g : p.grids_of_stream(0, t)) {
      EXPECT_TRUE(seen.insert(g).second) << "grid " << g << " duplicated";
    }
  }
  EXPECT_EQ(seen.size(), 32u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 31);
}

TEST(RunPlan, FlatStreamSeesAllGrids) {
  const auto p = RunPlan::make(Approach::kFlatOriginal, small_job(),
                               Optimizations::original(), 32, 4);
  EXPECT_EQ(p.grids_of_stream(5, 0).size(), 32u);
}

TEST(RunPlan, BatchesRespectPerStreamGridCounts) {
  const auto p = RunPlan::make(Approach::kHybridMultiple, small_job(),
                               Optimizations::all_on(8), 32, 4);
  // 8 grids per thread, batch 8, ramp on but double-buffered: first 4.
  const auto b = p.batches_of_stream(0, 0);
  EXPECT_EQ(std::accumulate(b.begin(), b.end(), 0), 8);
}

TEST(RunPlan, FaceBytesMatchDecomposition) {
  JobConfig j = small_job();  // 24^3
  const auto p = RunPlan::make(Approach::kFlatOptimized, j,
                               Optimizations::all_on(8), 8, 4);
  // 8 ranks -> 2x2x2, local 12^3, face = 2 * 12*12 * 8 bytes.
  EXPECT_EQ(p.decomp().process_grid(), Vec3::cube(2));
  for (int d = 0; d < 3; ++d)
    EXPECT_EQ(p.face_bytes_per_grid({0, 0, 0}, d), 2 * 144 * 8);
  EXPECT_EQ(p.points_per_grid({0, 0, 0}), 12 * 12 * 12);
  EXPECT_TRUE(p.dim_needs_exchange(0));
}

TEST(RunPlan, SingleCoreHasNoExchange) {
  const auto p = RunPlan::make(Approach::kFlatOriginal, small_job(),
                               Optimizations::original(), 1, 4);
  EXPECT_EQ(p.nranks(), 1);
  for (int d = 0; d < 3; ++d) EXPECT_FALSE(p.dim_needs_exchange(d));
}

TEST(RunPlan, PartialNodeHybridWorks) {
  const auto p = RunPlan::make(Approach::kHybridMultiple, small_job(),
                               Optimizations::all_on(8), 2, 4);
  EXPECT_EQ(p.nranks(), 1);
  EXPECT_EQ(p.threads_per_rank(), 2);
}

TEST(RunPlan, ComplexElementsDoubleFaceBytes) {
  JobConfig j = small_job();
  j.elem_bytes = 16;
  const auto p = RunPlan::make(Approach::kFlatOptimized, j,
                               Optimizations::all_on(8), 8, 4);
  EXPECT_EQ(p.face_bytes_per_grid({0, 0, 0}, 0), 2 * 144 * 16);
}

TEST(RunPlan, InvalidConfigsThrow) {
  JobConfig j = small_job();
  j.ngrids = 0;
  EXPECT_THROW(RunPlan::make(Approach::kFlatOptimized, j,
                             Optimizations::all_on(8), 8, 4),
               gpawfd::Error);
  EXPECT_THROW(RunPlan::make(Approach::kHybridMultiple, small_job(),
                             Optimizations::all_on(8), 42, 4),
               gpawfd::Error);  // not whole nodes
}

}  // namespace
}  // namespace gpawfd::sched
