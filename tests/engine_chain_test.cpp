// Chained application: the engine's output can be fed straight back as
// input (its ghosts are refreshed by the next call's halo exchange) —
// how GPAW iterates the FD operation in solvers. Two distributed sweeps
// must equal two sequential sweeps, for every approach.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/testing.hpp"
#include "mp/thread_comm.hpp"

namespace gpawfd::core {
namespace {

using sched::Approach;
using sched::JobConfig;
using sched::Optimizations;
using sched::RunPlan;

class EngineChain : public ::testing::TestWithParam<Approach> {};

TEST_P(EngineChain, TwoSweepsMatchSequentialSquare) {
  const Approach a = GetParam();
  JobConfig j;
  j.grid_shape = {12, 12, 12};
  j.ngrids = 8;
  j.ghost = 2;
  const Optimizations o = a == Approach::kFlatOriginal
                              ? Optimizations::original()
                              : Optimizations::all_on(2);
  const auto plan = RunPlan::make(a, j, o, 8, 4);
  const auto coeffs = stencil::Coeffs::laplacian(2);

  // Sequential ground truth: apply twice.
  std::vector<grid::Array3D<double>> expected;
  for (int g = 0; g < j.ngrids; ++g) {
    grid::Array3D<double> in(j.grid_shape, j.ghost), mid(j.grid_shape, j.ghost),
        out(j.grid_shape, j.ghost);
    testing::fill_local(in, grid::Box3{{0, 0, 0}, j.grid_shape}, g);
    grid::local_periodic_fill(in);
    stencil::apply_reference(in, mid, coeffs);
    grid::local_periodic_fill(mid);
    stencil::apply_reference(mid, out, coeffs);
    expected.push_back(std::move(out));
  }

  mp::ThreadWorld world(plan.nranks(), mp::ThreadMode::kMultiple);
  world.run([&](mp::ThreadComm& comm) {
    DistributedFd<double> engine(comm, plan, coeffs);
    const grid::Box3 box = plan.decomp().local_box(engine.coords());
    const auto n = static_cast<std::size_t>(j.ngrids);
    std::vector<grid::Array3D<double>> in(n), mid(n), out(n);
    for (std::size_t g = 0; g < n; ++g) {
      in[g] = grid::Array3D<double>(box.shape(), j.ghost);
      mid[g] = grid::Array3D<double>(box.shape(), j.ghost);
      out[g] = grid::Array3D<double>(box.shape(), j.ghost);
      testing::fill_local(in[g], box, static_cast<int>(g));
    }
    engine.apply_all(in, mid);
    engine.apply_all(mid, out);  // mid's ghosts refreshed here

    std::vector<bool> owned(n, false);
    for (int s = 0; s < plan.comm_streams_per_rank(); ++s)
      for (int g : plan.grids_of_stream(comm.rank(), s))
        owned[static_cast<std::size_t>(g)] = true;
    for (std::size_t g = 0; g < n; ++g) {
      if (!owned[g]) continue;
      out[g].for_each_interior([&](Vec3 p, double& v) {
        ASSERT_NEAR(v, expected[g].at(box.lo + p), 1e-10)
            << to_string(a) << " grid " << g << " at " << p;
      });
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllApproaches, EngineChain,
                         ::testing::Values(
                             Approach::kFlatOriginal,
                             Approach::kFlatOptimized,
                             Approach::kHybridMultiple,
                             Approach::kHybridMasterOnly,
                             Approach::kFlatOptimizedSubgroups));

}  // namespace
}  // namespace gpawfd::core
