// Property tests of the stencil substrate: convergence order, linearity,
// translation invariance, symmetry — for every radius and across shapes.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "grid/array3d.hpp"
#include "stencil/kernels.hpp"

namespace gpawfd::stencil {
namespace {

using grid::Array3D;
constexpr double kPi = std::numbers::pi;

class StencilRadius : public ::testing::TestWithParam<int> {};

/// Central differences of radius r are O(h^{2r}) accurate: halving h
/// must shrink the plane-wave error by ~2^{2r}.
TEST_P(StencilRadius, ConvergenceOrderMatchesRadius) {
  const int r = GetParam();
  auto max_error = [&](int n) {
    const double h = 2.0 * kPi / n;
    Array3D<double> in(Vec3::cube(n), r), out(Vec3::cube(n), r);
    in.for_each_interior([&](Vec3 p, double& v) {
      v = std::sin(static_cast<double>(p.x) * h) +
          std::cos(static_cast<double>(p.y) * h);
    });
    grid::local_periodic_fill(in);
    apply(in, out, Coeffs::laplacian_spacing(r, h, h, h));
    double err = 0;
    out.for_each_interior([&](Vec3 p, double& v) {
      const double exact = -(std::sin(static_cast<double>(p.x) * h) +
                             std::cos(static_cast<double>(p.y) * h));
      err = std::max(err, std::fabs(v - exact));
    });
    return err;
  };
  const double e1 = max_error(16);
  const double e2 = max_error(32);
  const double order = std::log2(e1 / e2);
  EXPECT_NEAR(order, 2.0 * r, 0.4) << "radius " << r;
}

TEST_P(StencilRadius, Linearity) {
  const int r = GetParam();
  const Vec3 n{9, 8, 7};
  Array3D<double> a(n, r), b(n, r), combo(n, r);
  Array3D<double> out_a(n, r), out_b(n, r), out_combo(n, r);
  Rng rng(13);
  a.for_each_interior([&](Vec3, double& v) { v = rng.uniform(-1, 1); });
  b.for_each_interior([&](Vec3, double& v) { v = rng.uniform(-1, 1); });
  const double alpha = 2.5, beta = -0.75;
  combo.for_each_interior(
      [&](Vec3 p, double& v) { v = alpha * a.at(p) + beta * b.at(p); });
  grid::local_periodic_fill(a);
  grid::local_periodic_fill(b);
  grid::local_periodic_fill(combo);
  const Coeffs c = Coeffs::laplacian(r);
  apply(a, out_a, c);
  apply(b, out_b, c);
  apply(combo, out_combo, c);
  out_combo.for_each_interior([&](Vec3 p, double& v) {
    EXPECT_NEAR(v, alpha * out_a.at(p) + beta * out_b.at(p), 1e-11);
  });
}

TEST_P(StencilRadius, TranslationInvarianceUnderPeriodicShift) {
  const int r = GetParam();
  const Vec3 n{8, 8, 8};
  const Vec3 shift{3, 5, 1};
  Array3D<double> a(n, r), shifted(n, r), out_a(n, r), out_s(n, r);
  Rng rng(21);
  a.for_each_interior([&](Vec3, double& v) { v = rng.uniform(-1, 1); });
  shifted.for_each_interior([&](Vec3 p, double& v) {
    Vec3 q = p + shift;
    for (int d = 0; d < 3; ++d) q[d] %= n[d];
    v = a.at(q);
  });
  grid::local_periodic_fill(a);
  grid::local_periodic_fill(shifted);
  const Coeffs c = Coeffs::laplacian(r);
  apply(a, out_a, c);
  apply(shifted, out_s, c);
  out_s.for_each_interior([&](Vec3 p, double& v) {
    Vec3 q = p + shift;
    for (int d = 0; d < 3; ++d) q[d] %= n[d];
    EXPECT_DOUBLE_EQ(v, out_a.at(q));
  });
}

/// The Laplacian is self-adjoint on periodic grids: <Ax, y> == <x, Ay>.
TEST_P(StencilRadius, SelfAdjointOnPeriodicGrid) {
  const int r = GetParam();
  const Vec3 n{7, 9, 8};
  Array3D<double> x(n, r), y(n, r), ax(n, r), ay(n, r);
  Rng rng(31);
  x.for_each_interior([&](Vec3, double& v) { v = rng.uniform(-1, 1); });
  y.for_each_interior([&](Vec3, double& v) { v = rng.uniform(-1, 1); });
  grid::local_periodic_fill(x);
  grid::local_periodic_fill(y);
  const Coeffs c = Coeffs::laplacian(r);
  apply(x, ax, c);
  apply(y, ay, c);
  double ax_y = 0, x_ay = 0;
  ax.for_each_interior([&](Vec3 p, double& v) { ax_y += v * y.at(p); });
  ay.for_each_interior([&](Vec3 p, double& v) { x_ay += v * x.at(p); });
  EXPECT_NEAR(ax_y, x_ay, 1e-9 * std::max(1.0, std::fabs(ax_y)));
}

/// Eigenvalues of the discrete Laplacian are non-positive: the Rayleigh
/// quotient of any periodic field must be <= 0.
TEST_P(StencilRadius, NegativeSemiDefinite) {
  const int r = GetParam();
  const Vec3 n{8, 8, 8};
  Rng rng(37);
  for (int trial = 0; trial < 5; ++trial) {
    Array3D<double> x(n, r), ax(n, r);
    x.for_each_interior([&](Vec3, double& v) { v = rng.uniform(-1, 1); });
    grid::local_periodic_fill(x);
    apply(x, ax, Coeffs::laplacian(r));
    double q = 0;
    ax.for_each_interior([&](Vec3 p, double& v) { q += v * x.at(p); });
    EXPECT_LE(q, 1e-10) << "radius " << r << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRadii, StencilRadius,
                         ::testing::Values(1, 2, 3, 4));

// ---- Fast-path agreement ---------------------------------------------
// The SIMD/tiled kernels reorder the floating-point sums, so they agree
// with the ground-truth transcription to rounding, not bit-exactly.

constexpr double kTol = 1e-11;

template <typename T>
void fill_random(Array3D<T>& a, Rng& rng) {
  a.for_each_interior([&](Vec3, T& v) { v = rng.uniform(-1, 1); });
}
template <>
void fill_random(Array3D<std::complex<double>>& a, Rng& rng) {
  a.for_each_interior([&](Vec3, std::complex<double>& v) {
    v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  });
}

template <typename T>
void expect_match(const Array3D<T>& got, const Array3D<T>& want,
                  const char* what) {
  want.for_each_interior([&](Vec3 p, const T& v) {
    ASSERT_NEAR(std::abs(got.at(p) - v), 0.0, kTol)
        << what << " at (" << p.x << "," << p.y << "," << p.z << ")";
  });
}

// Odd, strided, and tile-boundary-straddling extents: none are a
// multiple of the SIMD width, the default y-tile, or the tiny test
// tiling below, so every scalar tail and tile edge is exercised.
const Vec3 kShapes[] = {{9, 8, 7}, {5, 11, 13}, {8, 7, 33}, {6, 9, 10}};

template <typename T>
void check_fast_paths(int radius, Vec3 n, unsigned seed) {
  Array3D<T> in(n, radius), want(n, radius), got(n, radius);
  Rng rng(seed);
  fill_random(in, rng);
  grid::local_periodic_fill(in);
  const Coeffs c = Coeffs::laplacian(radius);
  apply_reference(in, want, c);

  apply(in, got, c);
  expect_match(got, want, "apply");

  apply_scalar(in, got, c);
  expect_match(got, want, "apply_scalar");

  // Tiny tiles force rows to split mid-vector and y-tiles to straddle.
  apply_slab(in, got, c, 0, n.x, Tiling{3, 8});
  expect_match(got, want, "apply_slab tiled");
}

class FastPathRadius : public ::testing::TestWithParam<int> {};

TEST_P(FastPathRadius, MatchesReferenceDouble) {
  unsigned seed = 101;
  for (const Vec3& n : kShapes)
    check_fast_paths<double>(GetParam(), n, seed++);
}

TEST_P(FastPathRadius, MatchesReferenceComplex) {
  unsigned seed = 202;
  for (const Vec3& n : kShapes)
    check_fast_paths<std::complex<double>>(GetParam(), n, seed++);
}

TEST_P(FastPathRadius, FusedJacobiMatchesReference) {
  const int r = GetParam();
  const double omega = 0.7, shift = 0.35;
  for (const Vec3& n : kShapes) {
    Array3D<double> u(n, r), b(n, r), au(n, r), want(n, r), got(n, r);
    Rng rng(303 + static_cast<unsigned>(n.z));
    fill_random(u, rng);
    fill_random(b, rng);
    grid::local_periodic_fill(u);
    const Coeffs c = Coeffs::laplacian(r);
    apply_reference(u, au, c);
    const double w = omega / (c.center + shift);
    want.for_each_interior([&](Vec3 p, double& v) {
      v = u.at(p) + w * (b.at(p) - au.at(p) - shift * u.at(p));
    });

    jacobi_step(u, b, got, c, omega, shift);
    expect_match(got, want, "jacobi_step fused");

    jacobi_step_unfused(u, b, got, c, omega, shift);
    expect_match(got, want, "jacobi_step unfused");
  }
}

TEST_P(FastPathRadius, FusedResidualMatchesReference) {
  const int r = GetParam();
  for (const Vec3& n : kShapes) {
    Array3D<double> u(n, r), rhs(n, r), au(n, r), want(n, r), got(n, r);
    Rng rng(404 + static_cast<unsigned>(n.y));
    fill_random(u, rng);
    fill_random(rhs, rng);
    grid::local_periodic_fill(u);
    const Coeffs c = Coeffs::laplacian(r);
    apply_reference(u, au, c);
    want.for_each_interior(
        [&](Vec3 p, double& v) { v = rhs.at(p) - au.at(p); });

    residual(u, rhs, got, c);
    expect_match(got, want, "residual fused");
  }
}

TEST_P(FastPathRadius, RandomizedShapesAgainstReference) {
  const int r = GetParam();
  Rng rng(550 + static_cast<unsigned>(r));
  for (int trial = 0; trial < 4; ++trial) {
    const Vec3 n{static_cast<std::int64_t>(rng.uniform(3, 12)),
                 static_cast<std::int64_t>(rng.uniform(3, 12)),
                 static_cast<std::int64_t>(rng.uniform(3, 20))};
    check_fast_paths<double>(r, n, 660 + static_cast<unsigned>(trial));
  }
}

INSTANTIATE_TEST_SUITE_P(AllRadii, FastPathRadius,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace gpawfd::stencil
