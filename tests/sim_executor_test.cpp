// Simulated-executor tests: cross-validation against the functional
// engine's communication accounting, and structural timing properties
// (overlap helps, batching helps at scale, hybrid partitions coarser).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/sim_executor.hpp"
#include "core/testing.hpp"
#include "mp/thread_comm.hpp"

namespace gpawfd::core {
namespace {

using bgsim::MachineConfig;
using sched::Approach;
using sched::JobConfig;
using sched::Optimizations;
using sched::RunPlan;

JobConfig job(Vec3 shape, int ngrids) {
  JobConfig j;
  j.grid_shape = shape;
  j.ngrids = ngrids;
  j.ghost = 2;
  return j;
}

TEST(StencilFlops, ThirteenPointIs25) {
  EXPECT_EQ(stencil_flops_per_point(2), 25);
  EXPECT_EQ(stencil_flops_per_point(1), 13);
}

TEST(SimExecutor, SequentialBaselineScalesWithWork) {
  const MachineConfig m = MachineConfig::bluegene_p();
  JobConfig j1 = job(Vec3::cube(32), 8);
  JobConfig j2 = job(Vec3::cube(32), 16);  // twice the grids
  const double t1 = simulate_sequential_seconds(j1, m);
  const double t2 = simulate_sequential_seconds(j2, m);
  EXPECT_GT(t1, 0);
  EXPECT_NEAR(t2 / t1, 2.0, 0.01);
}

TEST(SimExecutor, DeterministicAcrossRuns) {
  const MachineConfig m = MachineConfig::bluegene_p();
  const auto plan = RunPlan::make(Approach::kHybridMultiple,
                                  job(Vec3::cube(48), 32),
                                  Optimizations::all_on(8), 64, 4);
  const SimResult a = simulate(plan, m);
  const SimResult b = simulate(plan, m);
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.bytes_sent_total, b.bytes_sent_total);
  EXPECT_EQ(a.messages_total, b.messages_total);
}

/// The decisive cross-check: for identical plans, the simulator must
/// inject exactly the bytes the functional engine sends through the real
/// in-process transport.
class SimVsFunctionalBytes : public ::testing::TestWithParam<Approach> {};

TEST_P(SimVsFunctionalBytes, ByteForByte) {
  const Approach a = GetParam();
  JobConfig j = job({16, 12, 12}, 8);
  const Optimizations o = a == Approach::kFlatOriginal
                              ? Optimizations::original()
                              : Optimizations::all_on(2);
  const auto plan = RunPlan::make(a, j, o, 8, 4);

  // Functional run.
  const auto coeffs = stencil::Coeffs::laplacian(2);
  mp::ThreadWorld world(plan.nranks(), mp::ThreadMode::kMultiple);
  std::atomic<std::int64_t> functional_bytes{0}, functional_msgs{0};
  world.run([&](mp::ThreadComm& comm) {
    DistributedFd<double> engine(comm, plan, coeffs);
    const grid::Box3 box = plan.decomp().local_box(engine.coords());
    const auto n = static_cast<std::size_t>(j.ngrids);
    std::vector<grid::Array3D<double>> in(n), out(n);
    for (std::size_t g = 0; g < n; ++g) {
      in[g] = grid::Array3D<double>(box.shape(), j.ghost);
      out[g] = grid::Array3D<double>(box.shape(), j.ghost);
      testing::fill_local(in[g], box, static_cast<int>(g));
    }
    engine.apply_all(in, out);
    functional_bytes += comm.stats().bytes_sent.load();
    functional_msgs += comm.stats().messages_sent.load();
  });

  // Simulated run.
  const SimResult sim = simulate(plan, MachineConfig::bluegene_p());
  EXPECT_EQ(sim.bytes_sent_total, functional_bytes.load()) << to_string(a);
  EXPECT_EQ(sim.messages_total, functional_msgs.load()) << to_string(a);
}

INSTANTIATE_TEST_SUITE_P(AllApproaches, SimVsFunctionalBytes,
                         ::testing::Values(
                             Approach::kFlatOriginal,
                             Approach::kFlatOptimized,
                             Approach::kHybridMultiple,
                             Approach::kHybridMasterOnly,
                             Approach::kFlatOptimizedSubgroups));

TEST(SimExecutor, NonblockingBeatsSerializedExchange) {
  const MachineConfig m = MachineConfig::bluegene_p();
  const JobConfig j = job(Vec3::cube(96), 64);
  const int cores = 512;
  const auto serial = RunPlan::make(Approach::kFlatOriginal, j,
                                    Optimizations::original(), cores, 4);
  Optimizations nb = Optimizations::original();
  nb.nonblocking_tridim = true;
  const auto overlap =
      RunPlan::make(Approach::kFlatOptimized, j, nb, cores, 4);
  EXPECT_LT(simulate(overlap, m).seconds, simulate(serial, m).seconds);
}

TEST(SimExecutor, BatchingHelpsWhenSubgridsAreTiny) {
  const MachineConfig m = MachineConfig::bluegene_p();
  const JobConfig j = job(Vec3::cube(96), 64);
  const int cores = 4096;  // 96^3 over 4096 ranks: tiny faces
  Optimizations b1 = Optimizations::all_on(1);
  Optimizations b8 = Optimizations::all_on(8);
  const auto p1 = RunPlan::make(Approach::kFlatOptimized, j, b1, cores, 4);
  const auto p8 = RunPlan::make(Approach::kFlatOptimized, j, b8, cores, 4);
  EXPECT_LT(simulate(p8, m).seconds, simulate(p1, m).seconds);
}

TEST(SimExecutor, HybridSendsFewerBytesThanFlat) {
  const MachineConfig m = MachineConfig::bluegene_p();
  const JobConfig j = job(Vec3::cube(96), 64);
  const int cores = 512;
  const auto flat = RunPlan::make(Approach::kFlatOptimized, j,
                                  Optimizations::all_on(8), cores, 4);
  const auto hyb = RunPlan::make(Approach::kHybridMultiple, j,
                                 Optimizations::all_on(8), cores, 4);
  const SimResult rf = simulate(flat, m);
  const SimResult rh = simulate(hyb, m);
  EXPECT_LT(rh.bytes_sent_total, rf.bytes_sent_total);
  EXPECT_LT(rh.bytes_sent_per_node, rf.bytes_sent_per_node);
}

TEST(SimExecutor, SubgroupAblationMatchesHybridMultipleClosely) {
  // The paper found them performance-identical: the only difference in
  // the model is MPI-mode overhead vs thread overhead, so within a few
  // percent.
  const MachineConfig m = MachineConfig::bluegene_p();
  const JobConfig j = job(Vec3::cube(96), 256);
  const int cores = 2048;
  const auto sub = RunPlan::make(Approach::kFlatOptimizedSubgroups, j,
                                 Optimizations::all_on(8), cores, 4);
  const auto hyb = RunPlan::make(Approach::kHybridMultiple, j,
                                 Optimizations::all_on(8), cores, 4);
  const double ts = simulate(sub, m).seconds;
  const double th = simulate(hyb, m).seconds;
  EXPECT_NEAR(ts / th, 1.0, 0.10);
}

TEST(SimExecutor, UtilizationBetweenZeroAndOne) {
  const MachineConfig m = MachineConfig::bluegene_p();
  for (Approach a : {Approach::kFlatOriginal, Approach::kFlatOptimized,
                     Approach::kHybridMultiple,
                     Approach::kHybridMasterOnly}) {
    const Optimizations o = a == Approach::kFlatOriginal
                                ? Optimizations::original()
                                : Optimizations::all_on(8);
    const auto plan =
        RunPlan::make(a, job(Vec3::cube(96), 64), o, 512, 4);
    const SimResult r = simulate(plan, m);
    EXPECT_GT(r.utilization, 0.0) << to_string(a);
    EXPECT_LE(r.utilization, 1.0) << to_string(a);
    EXPECT_GT(r.seconds, 0.0) << to_string(a);
  }
}

TEST(SimExecutor, TopologyMappingBeatsLinearPlacement) {
  const MachineConfig m = MachineConfig::bluegene_p();
  const JobConfig j = job(Vec3::cube(96), 64);
  Optimizations mapped = Optimizations::all_on(8);
  Optimizations unmapped = Optimizations::all_on(8);
  unmapped.topology_mapping = false;
  const auto pm =
      RunPlan::make(Approach::kHybridMultiple, j, mapped, 2048, 4);
  const auto pu =
      RunPlan::make(Approach::kHybridMultiple, j, unmapped, 2048, 4);
  EXPECT_LT(simulate(pm, m).seconds, simulate(pu, m).seconds);
}

TEST(SimExecutor, DoubleBufferingHidesCommunication) {
  const MachineConfig m = MachineConfig::bluegene_p();
  const JobConfig j = job(Vec3::cube(96), 256);
  Optimizations db = Optimizations::all_on(8);
  Optimizations nodb = Optimizations::all_on(8);
  nodb.double_buffering = false;
  nodb.ramp_up = false;
  const auto p_db = RunPlan::make(Approach::kHybridMultiple, j, db, 512, 4);
  const auto p_no = RunPlan::make(Approach::kHybridMultiple, j, nodb, 512, 4);
  EXPECT_LT(simulate(p_db, m).seconds, simulate(p_no, m).seconds);
}

TEST(SimExecutor, MoreIterationsScaleTime) {
  const MachineConfig m = MachineConfig::bluegene_p();
  JobConfig j = job(Vec3::cube(48), 32);
  const auto p1 = RunPlan::make(Approach::kFlatOptimized, j,
                                Optimizations::all_on(8), 64, 4);
  j.iterations = 3;
  const auto p3 = RunPlan::make(Approach::kFlatOptimized, j,
                                Optimizations::all_on(8), 64, 4);
  const double t1 = simulate(p1, m).seconds;
  const double t3 = simulate(p3, m).seconds;
  EXPECT_NEAR(t3 / t1, 3.0, 0.35);
}

}  // namespace
}  // namespace gpawfd::core
