// Tests for the RPC front-end: frame codec round-trips (including torn
// byte-at-a-time delivery), protocol-error rejection (bad magic/version,
// oversized frames), the SimResult and JobKey payload codecs, seeded
// fuzz against the decoder and the spec parser, and loopback end-to-end
// coverage — identical results over the wire, every ErrorReason surfaced
// as its distinct wire status, overload admission, reconnect after a
// server restart.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <set>
#include <thread>

#include "common/rng.hpp"
#include "net/client.hpp"
#include "net/frame.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "net/wire_status.hpp"
#include "svc/job_key.hpp"

namespace gpawfd {
namespace {

core::SimJobSpec small_spec(int ngrids = 8, int cores = 4) {
  core::SimJobSpec spec;
  spec.approach = sched::Approach::kHybridMultiple;
  spec.job.grid_shape = Vec3::cube(24);
  spec.job.ngrids = ngrids;
  spec.opt = sched::Optimizations::all_on(2);
  spec.total_cores = cores;
  spec.cores_per_node = 4;
  return spec;
}

core::SimResult sample_result() {
  core::SimResult r;
  r.seconds = 1.2345678901234567;      // needs all 17 significant digits
  r.compute_core_seconds = 0.25;
  r.utilization = 0.70000000000000007;  // not exactly representable
  r.bytes_sent_total = (std::int64_t{1} << 40) + 7;
  r.bytes_sent_per_node = 1e-300;       // subnormal-adjacent corner
  r.messages_total = 123456789;
  r.phases.compute = 3.14159;
  r.phases.copy = 0;
  r.phases.mpi_overhead = -0.0;         // signed zero must survive
  r.phases.wait = 1e300;
  r.phases.barrier = 2.5e-7;
  r.phases.spawn = 42.0;
  return r;
}

// ---- frame codec -------------------------------------------------------

TEST(Frame, SubmitRoundTripsHeaderPayloadAndPriority) {
  const std::string canonical = svc::JobKey::of(small_spec()).canonical();
  const auto bytes =
      net::make_submit_frame(0xDEADBEEFCAFEF00DULL, canonical,
                             svc::Priority::kInteractive);
  ASSERT_EQ(bytes.size(), net::kHeaderBytes + canonical.size());

  net::FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  auto res = dec.next();
  ASSERT_EQ(res.status, net::FrameDecoder::Status::kFrame);
  EXPECT_EQ(res.frame.header.type, net::FrameType::kSubmit);
  EXPECT_EQ(res.frame.header.request_id, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(net::priority_of_flags(res.frame.header.flags),
            svc::Priority::kInteractive);
  EXPECT_EQ(std::string(res.frame.payload.begin(), res.frame.payload.end()),
            canonical);
  EXPECT_EQ(dec.next().status, net::FrameDecoder::Status::kNeedMore);
}

TEST(Frame, OutOfRangePriorityFlagsClampToNormal) {
  EXPECT_EQ(net::priority_of_flags(0xFF), svc::Priority::kNormal);
  EXPECT_EQ(net::priority_of_flags(
                static_cast<std::uint8_t>(svc::Priority::kBatch)),
            svc::Priority::kBatch);
}

TEST(Frame, DecoderReassemblesTornByteAtATimeDelivery) {
  // Two frames back to back, delivered one byte per feed: worst-case TCP
  // segmentation. Both must come out intact, in order.
  const auto a = net::make_error_frame(7, net::WireStatus::kTimedOut, "late");
  const auto b = net::make_control_frame(net::FrameType::kPong, 9);
  std::vector<std::uint8_t> stream = a;
  stream.insert(stream.end(), b.begin(), b.end());

  net::FrameDecoder dec;
  std::vector<net::Frame> frames;
  for (const std::uint8_t byte : stream) {
    dec.feed(&byte, 1);
    for (;;) {
      auto res = dec.next();
      if (res.status != net::FrameDecoder::Status::kFrame) {
        ASSERT_EQ(res.status, net::FrameDecoder::Status::kNeedMore);
        break;
      }
      frames.push_back(std::move(res.frame));
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].header.type, net::FrameType::kError);
  EXPECT_EQ(frames[0].header.status, net::WireStatus::kTimedOut);
  EXPECT_EQ(frames[0].header.request_id, 7u);
  EXPECT_EQ(std::string(frames[0].payload.begin(), frames[0].payload.end()),
            "late");
  EXPECT_EQ(frames[1].header.type, net::FrameType::kPong);
  EXPECT_EQ(frames[1].header.request_id, 9u);
}

TEST(Frame, ManyFramesInOneFeedAllComeOut) {
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 20; ++i) {
    const auto f = net::make_control_frame(net::FrameType::kPing,
                                           static_cast<std::uint64_t>(i));
    stream.insert(stream.end(), f.begin(), f.end());
  }
  net::FrameDecoder dec;
  dec.feed(stream.data(), stream.size());
  for (int i = 0; i < 20; ++i) {
    auto res = dec.next();
    ASSERT_EQ(res.status, net::FrameDecoder::Status::kFrame);
    EXPECT_EQ(res.frame.header.request_id, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(dec.next().status, net::FrameDecoder::Status::kNeedMore);
}

TEST(Frame, OversizedFrameIsRejectedWithAddressableHeader) {
  net::FrameDecoder dec(/*max_frame_bytes=*/64);
  net::FrameHeader h;
  h.type = net::FrameType::kSubmit;
  h.request_id = 31337;
  std::vector<std::uint8_t> payload(65, 'x');
  const auto bytes = net::encode_frame(h, payload.data(), payload.size());
  dec.feed(bytes.data(), bytes.size());
  auto res = dec.next();
  ASSERT_EQ(res.status, net::FrameDecoder::Status::kError);
  EXPECT_EQ(res.error_status, net::WireStatus::kFrameTooLarge);
  EXPECT_TRUE(res.header_valid) << "the peer can be told which request died";
  EXPECT_EQ(res.frame.header.request_id, 31337u);
  // Sticky: the stream cannot be resynchronized past an unread payload.
  EXPECT_EQ(dec.next().status, net::FrameDecoder::Status::kError);
}

TEST(Frame, BadMagicPoisonsWithoutAHeader) {
  net::FrameDecoder dec;
  std::vector<std::uint8_t> junk(net::kHeaderBytes, 0x5A);
  dec.feed(junk.data(), junk.size());
  auto res = dec.next();
  ASSERT_EQ(res.status, net::FrameDecoder::Status::kError);
  EXPECT_EQ(res.error_status, net::WireStatus::kBadRequest);
  EXPECT_FALSE(res.header_valid);
  EXPECT_EQ(dec.next().status, net::FrameDecoder::Status::kError);
}

TEST(Frame, WrongVersionIsRejected) {
  auto bytes = net::make_control_frame(net::FrameType::kPing, 1);
  bytes[4] = net::kWireVersion + 1;  // version byte follows the magic
  net::FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  auto res = dec.next();
  ASSERT_EQ(res.status, net::FrameDecoder::Status::kError);
  EXPECT_EQ(res.error_status, net::WireStatus::kBadRequest);
}

// ---- payload codecs ----------------------------------------------------

TEST(Codec, SimResultRoundTripsBitExact) {
  const core::SimResult r = sample_result();
  const auto bytes = net::encode_sim_result(r);
  ASSERT_EQ(bytes.size(), net::kSimResultWireBytes);
  const core::SimResult d = net::decode_sim_result(bytes.data(), bytes.size());

  // Bit-exact, not epsilon-close: the wire carries IEEE-754 images.
  const auto bits = [](double v) {
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
  };
  EXPECT_EQ(bits(d.seconds), bits(r.seconds));
  EXPECT_EQ(bits(d.compute_core_seconds), bits(r.compute_core_seconds));
  EXPECT_EQ(bits(d.utilization), bits(r.utilization));
  EXPECT_EQ(d.bytes_sent_total, r.bytes_sent_total);
  EXPECT_EQ(bits(d.bytes_sent_per_node), bits(r.bytes_sent_per_node));
  EXPECT_EQ(d.messages_total, r.messages_total);
  EXPECT_EQ(bits(d.phases.compute), bits(r.phases.compute));
  EXPECT_EQ(bits(d.phases.copy), bits(r.phases.copy));
  EXPECT_EQ(bits(d.phases.mpi_overhead), bits(r.phases.mpi_overhead));
  EXPECT_EQ(bits(d.phases.wait), bits(r.phases.wait));
  EXPECT_EQ(bits(d.phases.barrier), bits(r.phases.barrier));
  EXPECT_EQ(bits(d.phases.spawn), bits(r.phases.spawn));
  EXPECT_THROW(net::decode_sim_result(bytes.data(), bytes.size() - 1), Error);
}

TEST(Codec, ParseJobSpecRoundTripsTheCanonicalString) {
  for (const auto approach :
       {sched::Approach::kFlatOriginal, sched::Approach::kFlatOptimized,
        sched::Approach::kHybridMultiple, sched::Approach::kHybridMasterOnly}) {
    auto spec = small_spec(12, 64);
    spec.approach = approach;
    spec.job.periodic = false;
    spec.scaled.grid_cap = 16;
    const std::string canonical = svc::JobKey::of(spec).canonical();
    const core::SimJobSpec parsed = net::parse_job_spec(canonical);
    EXPECT_EQ(svc::JobKey::of(parsed).canonical(), canonical);
  }
}

TEST(Codec, ParseJobSpecRejectsDriftAndGarbage) {
  const std::string canonical = svc::JobKey::of(small_spec()).canonical();
  EXPECT_THROW(net::parse_job_spec(""), Error);
  EXPECT_THROW(net::parse_job_spec("v2|" + canonical.substr(3)), Error);
  EXPECT_THROW(net::parse_job_spec(canonical + "x"), Error);
  EXPECT_THROW(net::parse_job_spec(canonical.substr(0, canonical.size() - 1)),
               Error);
  EXPECT_THROW(net::parse_job_spec("not a job spec at all"), Error);
}

TEST(Codec, ParseJobSpecEnforcesAdmissionBounds) {
  // A well-formed canonical string asking for an absurd simulation must
  // be refused — a remote client cannot DoS a worker with one frame.
  auto spec = small_spec();
  spec.job.iterations = 100000000;
  EXPECT_THROW(net::parse_job_spec(svc::JobKey::of(spec).canonical()), Error);
  spec = small_spec();
  spec.job.grid_shape = Vec3::cube(1 << 20);
  EXPECT_THROW(net::parse_job_spec(svc::JobKey::of(spec).canonical()), Error);
}

TEST(Codec, FillFrameRoundTripsRecordBitExact) {
  net::FillRecord record;
  record.key = svc::JobKey::of(small_spec()).canonical();
  record.result = sample_result();
  record.cost_seconds = 0.0625;
  record.write_time = 1.7e9;

  const auto bytes = net::make_fill_frame(7, record);
  net::FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  const auto res = dec.next();
  ASSERT_EQ(res.status, net::FrameDecoder::Status::kFrame);
  EXPECT_EQ(res.frame.header.type, net::FrameType::kFill);
  EXPECT_EQ(res.frame.header.request_id, 7u);

  const net::FillRecord back = net::decode_fill_payload(
      res.frame.payload.data(), res.frame.payload.size());
  EXPECT_EQ(back.key, record.key);
  EXPECT_DOUBLE_EQ(back.cost_seconds, record.cost_seconds);
  EXPECT_DOUBLE_EQ(back.write_time, record.write_time);
  // The value travels through the shared result codec: bit-exact,
  // signed zeros and near-subnormals included.
  EXPECT_DOUBLE_EQ(back.result.seconds, record.result.seconds);
  EXPECT_DOUBLE_EQ(back.result.bytes_sent_per_node,
                   record.result.bytes_sent_per_node);
  EXPECT_TRUE(std::signbit(back.result.phases.mpi_overhead));
  EXPECT_DOUBLE_EQ(back.result.phases.wait, record.result.phases.wait);
  EXPECT_EQ(back.result.messages_total, record.result.messages_total);
}

TEST(Codec, FillPayloadRejectsTruncationAndTrailingGarbage) {
  net::FillRecord record;
  record.key = svc::JobKey::of(small_spec()).canonical();
  record.result = sample_result();
  const auto frame = net::make_fill_frame(1, record);
  std::vector<std::uint8_t> payload(frame.begin() + net::kHeaderBytes,
                                    frame.end());

  // Every strict prefix must be refused — no silent zero-fill.
  for (const std::size_t len : {std::size_t{0}, std::size_t{3},
                                payload.size() / 2, payload.size() - 1})
    EXPECT_THROW(net::decode_fill_payload(payload.data(), len), Error) << len;
  // Trailing garbage is a framing bug upstream, not ignorable slack.
  auto padded = payload;
  padded.push_back(0);
  EXPECT_THROW(net::decode_fill_payload(padded.data(), padded.size()), Error);
  // An empty key can never name a cache entry.
  net::FillRecord empty_key = record;
  empty_key.key.clear();
  const auto bad = net::make_fill_frame(2, empty_key);
  EXPECT_THROW(net::decode_fill_payload(bad.data() + net::kHeaderBytes,
                                        bad.size() - net::kHeaderBytes),
               Error);
}

TEST(Codec, FuzzedBytesNeverCrashTheDecoder) {
  Rng rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    net::FrameDecoder dec(1024);
    const std::size_t n = 1 + rng.next_below(512);
    std::vector<std::uint8_t> bytes(n);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    // Occasionally start from a valid prefix so the fuzz also reaches
    // the post-header states.
    if (trial % 4 == 0) {
      auto good = net::make_control_frame(net::FrameType::kPing, trial);
      bytes.insert(bytes.begin(), good.begin(), good.end());
    }
    std::size_t offset = 0;
    while (offset < bytes.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng.next_below(64), bytes.size() - offset);
      dec.feed(bytes.data() + offset, chunk);
      offset += chunk;
      for (;;) {
        const auto res = dec.next();  // must never crash or loop forever
        if (res.status != net::FrameDecoder::Status::kFrame) break;
      }
    }
  }
}

TEST(Codec, FuzzedCanonicalMutationsThrowOrRoundTrip) {
  Rng rng(42424242);
  const std::string canonical = svc::JobKey::of(small_spec()).canonical();
  int accepted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = canonical;
    const int edits = 1 + static_cast<int>(rng.next_below(3));
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = rng.next_below(mutated.size());
      switch (rng.next_below(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.next_below(256));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>('0' + rng.next_below(10)));
          break;
      }
    }
    try {
      const core::SimJobSpec parsed = net::parse_job_spec(mutated);
      // A mutation that still parses must re-canonicalize to itself —
      // there is no input that silently means a different simulation.
      EXPECT_EQ(svc::JobKey::of(parsed).canonical(), mutated);
      ++accepted;
    } catch (const Error&) {
      // rejected: fine, and by far the common case
    }
  }
  EXPECT_LT(accepted, 30) << "mutation acceptance should be rare";
}

// ---- status mapping ----------------------------------------------------

TEST(WireStatus, EveryTerminalErrorReasonMapsToADistinctStatus) {
  const svc::ErrorReason reasons[] = {
      svc::ErrorReason::kCancelled,         svc::ErrorReason::kExecutorFailed,
      svc::ErrorReason::kTimedOut,          svc::ErrorReason::kGaveUp,
      svc::ErrorReason::kRejectedQueueFull, svc::ErrorReason::kRejectedShutdown,
  };
  std::set<net::WireStatus> seen;
  for (const auto r : reasons) {
    const net::WireStatus s = net::wire_status_of(r);
    EXPECT_NE(s, net::WireStatus::kOk);
    EXPECT_TRUE(seen.insert(s).second)
        << "duplicate wire status for reason " << svc::to_string(r);
  }
  EXPECT_EQ(net::wire_status_of(svc::ErrorReason::kUnknown),
            net::WireStatus::kInternal);
  // Every status has a printable, unique name (the metrics key space).
  std::set<std::string> names;
  for (int s = 0; s < net::kWireStatusCount; ++s)
    EXPECT_TRUE(
        names.insert(net::to_string(static_cast<net::WireStatus>(s))).second);
}

// ---- loopback end-to-end ----------------------------------------------

TEST(Loopback, SubmitOverTheWireMatchesTheInProcessResult) {
  svc::ServiceConfig cfg;
  cfg.workers = 2;
  svc::SimService service(cfg);
  net::Server server(service);

  net::ClientConfig ccfg;
  ccfg.port = server.port();
  net::Client client(ccfg);

  const auto spec = small_spec();
  const core::SimResult remote = client.submit(spec);
  const core::SimResult direct = core::simulate_job(spec);
  EXPECT_DOUBLE_EQ(remote.seconds, direct.seconds);
  EXPECT_DOUBLE_EQ(remote.utilization, direct.utilization);
  EXPECT_EQ(remote.bytes_sent_total, direct.bytes_sent_total);
  EXPECT_EQ(remote.messages_total, direct.messages_total);
  EXPECT_DOUBLE_EQ(remote.phases.wait, direct.phases.wait);

  // The repeat is a cache hit server-side: no second execution.
  const core::SimResult again = client.submit(spec);
  EXPECT_DOUBLE_EQ(again.seconds, direct.seconds);
  EXPECT_EQ(service.metrics().executed.load(), 1);
  EXPECT_EQ(server.metrics().replies(net::WireStatus::kOk), 2);
}

TEST(Loopback, PipelinedAsyncSubmitsAllComplete) {
  std::atomic<int> executions{0};
  svc::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.executor = [&](const core::SimJobSpec& s) {
    executions.fetch_add(1);
    core::SimResult r;
    r.seconds = static_cast<double>(s.job.ngrids);
    return r;
  };
  svc::SimService service(cfg);
  net::Server server(service);
  net::ClientConfig ccfg;
  ccfg.port = server.port();
  net::Client client(ccfg);

  std::vector<std::future<core::SimResult>> futures;
  for (int i = 0; i < 24; ++i)
    futures.push_back(client.submit_async(small_spec(8 + (i % 6))));
  for (int i = 0; i < 24; ++i)
    EXPECT_DOUBLE_EQ(futures[static_cast<std::size_t>(i)].get().seconds,
                     static_cast<double>(8 + (i % 6)));
  EXPECT_EQ(executions.load(), 6) << "single-flight dedup over the wire";

  // Counter reconciliation at quiescence: every submit got one reply.
  const auto counters = server.metrics().counter_map();
  EXPECT_EQ(counters.at("net.requests"), 24);
  EXPECT_EQ(server.metrics().replies_total(), 24);
  EXPECT_EQ(counters.at("net.frames_in"),
            counters.at("net.requests") + counters.at("net.pings"));
}

TEST(Loopback, PingPong) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  svc::SimService service(cfg);
  net::Server server(service);
  net::ClientConfig ccfg;
  ccfg.port = server.port();
  net::Client client(ccfg);
  client.ping();
  client.ping();
  EXPECT_EQ(server.metrics().pings.load(), 2);
}

TEST(Loopback, ExecutorFailureArrivesAsExecutorFailedStatus) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.executor = [](const core::SimJobSpec&) -> core::SimResult {
    throw Error("deliberate failure");
  };
  svc::SimService service(cfg);
  net::Server server(service);
  net::ClientConfig ccfg;
  ccfg.port = server.port();
  net::Client client(ccfg);
  try {
    client.submit(small_spec());
    FAIL() << "expected RpcError";
  } catch (const net::RpcError& e) {
    EXPECT_EQ(e.status(), net::WireStatus::kExecutorFailed);
    EXPECT_NE(std::string(e.what()).find("deliberate failure"),
              std::string::npos);
  }
  EXPECT_EQ(server.metrics().replies(net::WireStatus::kExecutorFailed), 1);
}

TEST(Loopback, RetryExhaustionArrivesAsGaveUpStatus) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.retry.max_attempts = 2;
  cfg.retry.initial_backoff_seconds = 0.001;
  cfg.executor = [](const core::SimJobSpec&) -> core::SimResult {
    throw Error("always failing");
  };
  svc::SimService service(cfg);
  net::Server server(service);
  net::ClientConfig ccfg;
  ccfg.port = server.port();
  net::Client client(ccfg);
  try {
    client.submit(small_spec());
    FAIL() << "expected RpcError";
  } catch (const net::RpcError& e) {
    EXPECT_EQ(e.status(), net::WireStatus::kGaveUp);
  }
}

TEST(Loopback, AttemptTimeoutArrivesAsTimedOutStatus) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.retry.attempt_timeout_seconds = 0.01;
  cfg.executor = [](const core::SimJobSpec&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return core::SimResult{};
  };
  svc::SimService service(cfg);
  net::Server server(service);
  net::ClientConfig ccfg;
  ccfg.port = server.port();
  net::Client client(ccfg);
  try {
    client.submit(small_spec());
    FAIL() << "expected RpcError";
  } catch (const net::RpcError& e) {
    EXPECT_EQ(e.status(), net::WireStatus::kTimedOut);
  }
}

TEST(Loopback, QueueFullArrivesAsRejectedQueueFullStatus) {
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  cfg.executor = [opened](const core::SimJobSpec&) {
    opened.wait();
    return core::SimResult{};
  };
  svc::SimService service(cfg);
  net::Server server(service);
  net::ClientConfig ccfg;
  ccfg.port = server.port();
  net::Client client(ccfg);

  // First distinct job occupies the single worker, second fills the
  // queue; keep submitting distinct jobs until one is shed.
  std::vector<std::future<core::SimResult>> inflight;
  bool saw_queue_full = false;
  for (int i = 0; i < 16 && !saw_queue_full; ++i) {
    auto f = client.submit_async(small_spec(8 + i));
    if (f.wait_for(std::chrono::milliseconds(200)) ==
        std::future_status::ready) {
      try {
        f.get();
      } catch (const net::RpcError& e) {
        EXPECT_EQ(e.status(), net::WireStatus::kRejectedQueueFull);
        saw_queue_full = true;
      }
    } else {
      inflight.push_back(std::move(f));
    }
  }
  EXPECT_TRUE(saw_queue_full);
  gate.set_value();
  for (auto& f : inflight) EXPECT_NO_THROW(f.get());
}

TEST(Loopback, ShutdownRejectionArrivesAsRejectedShutdownStatus) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  svc::SimService service(cfg);
  net::Server server(service);
  service.shutdown();
  net::ClientConfig ccfg;
  ccfg.port = server.port();
  net::Client client(ccfg);
  try {
    client.submit(small_spec());
    FAIL() << "expected RpcError";
  } catch (const net::RpcError& e) {
    EXPECT_EQ(e.status(), net::WireStatus::kRejectedShutdown);
  }
}

TEST(Loopback, MalformedSubmitGetsBadRequestThenClose) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  svc::SimService service(cfg);
  net::Server server(service);

  net::Socket sock = net::Socket::connect_to("127.0.0.1", server.port());
  const std::string junk = "v1|approach=9|utter nonsense";
  const auto frame =
      net::make_submit_frame(55, junk, svc::Priority::kNormal);
  ASSERT_TRUE(net::write_fully(sock.fd(), frame.data(), frame.size()));

  net::FrameDecoder dec;
  std::uint8_t buf[512];
  for (;;) {
    const auto r = net::read_some(sock.fd(), buf, sizeof buf);
    ASSERT_EQ(r.status, net::IoStatus::kOk);
    dec.feed(buf, r.n);
    const auto res = dec.next();
    if (res.status == net::FrameDecoder::Status::kNeedMore) continue;
    ASSERT_EQ(res.status, net::FrameDecoder::Status::kFrame);
    EXPECT_EQ(res.frame.header.type, net::FrameType::kError);
    EXPECT_EQ(res.frame.header.status, net::WireStatus::kBadRequest);
    EXPECT_EQ(res.frame.header.request_id, 55u);
    break;
  }
  EXPECT_EQ(server.metrics().replies(net::WireStatus::kBadRequest), 1);
}

TEST(Loopback, OversizedFrameGetsFrameTooLargeThenClose) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  svc::SimService service(cfg);
  net::ServerConfig scfg;
  scfg.max_frame_bytes = 128;
  net::Server server(service, scfg);

  net::Socket sock = net::Socket::connect_to("127.0.0.1", server.port());
  const std::string huge(256, 'z');
  const auto frame = net::make_submit_frame(77, huge, svc::Priority::kNormal);
  ASSERT_TRUE(net::write_fully(sock.fd(), frame.data(), frame.size()));

  net::FrameDecoder dec;
  std::uint8_t buf[512];
  bool got_reply = false;
  for (;;) {
    const auto r = net::read_some(sock.fd(), buf, sizeof buf);
    if (r.status != net::IoStatus::kOk) break;  // server closed after reply
    dec.feed(buf, r.n);
    const auto res = dec.next();
    if (res.status == net::FrameDecoder::Status::kNeedMore) continue;
    ASSERT_EQ(res.status, net::FrameDecoder::Status::kFrame);
    EXPECT_EQ(res.frame.header.status, net::WireStatus::kFrameTooLarge);
    EXPECT_EQ(res.frame.header.request_id, 77u);
    got_reply = true;
  }
  EXPECT_TRUE(got_reply);
  EXPECT_EQ(server.metrics().frame_errors.load(), 1);
}

TEST(Loopback, InflightLimitArrivesAsOverloaded) {
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.executor = [opened](const core::SimJobSpec&) {
    opened.wait();
    return core::SimResult{};
  };
  svc::SimService service(cfg);
  net::ServerConfig scfg;
  scfg.max_inflight_per_conn = 1;
  net::Server server(service, scfg);
  net::ClientConfig ccfg;
  ccfg.port = server.port();
  net::Client client(ccfg);

  auto first = client.submit_async(small_spec(8));
  // Distinct job so it cannot join the first flight; the connection's
  // single in-flight slot is taken, so it must bounce.
  bool saw_overloaded = false;
  for (int i = 0; i < 50 && !saw_overloaded; ++i) {
    auto second = client.submit_async(small_spec(9 + i));
    try {
      second.get();
    } catch (const net::RpcError& e) {
      ASSERT_EQ(e.status(), net::WireStatus::kOverloaded);
      saw_overloaded = true;
    }
  }
  EXPECT_TRUE(saw_overloaded);
  gate.set_value();
  EXPECT_NO_THROW(first.get());
}

TEST(Loopback, ClientReconnectsAfterServerRestart) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  svc::SimService service(cfg);

  auto first = std::make_unique<net::Server>(service);
  const std::uint16_t port = first->port();
  net::ClientConfig ccfg;
  ccfg.port = port;
  ccfg.max_reconnect_attempts = 10;
  ccfg.reconnect_backoff_seconds = 0.02;
  net::Client client(ccfg);
  EXPECT_NO_THROW(client.submit(small_spec()));

  first->stop();
  first.reset();
  // Same port (SO_REUSEADDR), fresh server over the same service.
  net::ServerConfig scfg;
  scfg.port = port;
  net::Server second(service, scfg);

  // The client notices the dead connection and transparently retries;
  // the resend is safe because the server dedups by JobKey.
  EXPECT_NO_THROW(client.submit(small_spec(9)));
  EXPECT_GE(client.reconnects(), 1);
  EXPECT_EQ(second.metrics().replies(net::WireStatus::kOk), 1);
}

TEST(Loopback, ReconnectWhileSaturatedPipelineWindowDoesNotDeadlock) {
  // A submit_async blocked in the pipeline-window wait must be released
  // by a dropped connection, not sleep forever: the wait predicate
  // includes !connected_ and the reader notifies the window CV when it
  // fails the pending map. This pins that contract across a full server
  // restart.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.executor = [opened](const core::SimJobSpec&) {
    opened.wait();
    return core::SimResult{};
  };
  svc::SimService service(cfg);

  auto server = std::make_unique<net::Server>(service);
  const std::uint16_t port = server->port();
  net::ClientConfig ccfg;
  ccfg.port = port;
  ccfg.pipeline_window = 2;
  ccfg.max_reconnect_attempts = 10;
  ccfg.reconnect_backoff_seconds = 0.02;
  net::Client client(ccfg);

  // Saturate the window with two distinct jobs parked on the gated
  // executor: both unanswered, so the window is full.
  auto first = client.submit_async(small_spec(8));
  auto second = client.submit_async(small_spec(9));

  // A third submit must block in the window wait — run it on its own
  // thread and prove it is still parked before the restart.
  auto third = std::async(std::launch::async, [&] {
    try {
      return client.submit_async(small_spec(10)).get();
    } catch (const net::RpcError&) {
      // Losing the connection mid-submit is an acceptable outcome for
      // the blocked call; deadlocking is not.
      return core::SimResult{};
    }
  });
  EXPECT_EQ(third.wait_for(std::chrono::milliseconds(100)),
            std::future_status::timeout);

  // Kill the server out from under the saturated window.
  server->stop();
  server.reset();

  // The blocked submit unblocks promptly — this is the deadlock check.
  ASSERT_EQ(third.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  EXPECT_NO_THROW(third.get());

  // The two in-flight requests fail honestly, not silently.
  for (auto* f : {&first, &second}) {
    try {
      f->get();
      FAIL() << "expected RpcError";
    } catch (const net::RpcError& e) {
      EXPECT_EQ(e.status(), net::WireStatus::kConnectionLost);
    }
  }

  // Same port, fresh server: the client reconnects and the window
  // machinery still works (submits complete once the gate opens).
  net::ServerConfig scfg;
  scfg.port = port;
  net::Server restarted(service, scfg);
  gate.set_value();
  EXPECT_NO_THROW(client.submit(small_spec(11)));
  EXPECT_GE(client.reconnects(), 1);
}

TEST(Loopback, ServerStopFailsOutstandingClientRequests) {
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.executor = [opened](const core::SimJobSpec&) {
    opened.wait();
    return core::SimResult{};
  };
  svc::SimService service(cfg);
  auto server = std::make_unique<net::Server>(service);
  net::ClientConfig ccfg;
  ccfg.port = server->port();
  net::Client client(ccfg);

  auto pending = client.submit_async(small_spec());
  server->stop();
  try {
    pending.get();
    FAIL() << "expected RpcError";
  } catch (const net::RpcError& e) {
    EXPECT_EQ(e.status(), net::WireStatus::kConnectionLost);
  }
  gate.set_value();  // unblock the worker so the service can drain
}

TEST(Loopback, FillPushIngestsIntoTheWarmCache) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  svc::SimService service(cfg);
  net::Server server(service);
  net::ClientConfig ccfg;
  ccfg.port = server.port();
  net::Client client(ccfg);

  const auto spec = small_spec();
  net::FillRecord record;
  record.key = svc::JobKey::of(spec).canonical();
  record.result.seconds = 123.5;
  record.cost_seconds = 2.0;
  record.write_time = 1.8e9;
  EXPECT_NO_THROW(client.fill_async(record).get());  // resolves on the ack

  EXPECT_EQ(service.metrics().fills_received.load(), 1);
  EXPECT_EQ(service.metrics().fills_accepted.load(), 1);
  // A submit of the filled key is a warm hit: nothing executes and the
  // pushed value comes back verbatim.
  const core::SimResult warm = client.submit(spec);
  EXPECT_DOUBLE_EQ(warm.seconds, 123.5);
  EXPECT_EQ(service.metrics().executed.load(), 0);
  EXPECT_GE(service.metrics().cache_hits.load(), 1);
  // Wire accounting: the fill is its own frame class and the
  // reconciliation identity now includes it.
  const auto counters = server.metrics().counter_map();
  EXPECT_EQ(counters.at("net.fills"), 1);
  EXPECT_EQ(counters.at("net.frames_in"),
            counters.at("net.requests") + counters.at("net.pings") +
                counters.at("net.fills"));
}

TEST(Loopback, SubmitCanonicalAsyncMatchesTheSpecPath) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  svc::SimService service(cfg);
  net::Server server(service);
  net::ClientConfig ccfg;
  ccfg.port = server.port();
  net::Client client(ccfg);

  const auto spec = small_spec();
  const core::SimResult via_canonical =
      client.submit_canonical_async(svc::JobKey::of(spec).canonical()).get();
  EXPECT_DOUBLE_EQ(via_canonical.seconds, core::simulate_job(spec).seconds);
  EXPECT_EQ(service.metrics().executed.load(), 1);
}

TEST(Loopback, TryPingReportsLivenessWithoutThrowing) {
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  svc::SimService service(cfg);
  auto server = std::make_unique<net::Server>(service);
  net::ClientConfig ccfg;
  ccfg.port = server->port();
  ccfg.max_reconnect_attempts = 0;
  net::Client client(ccfg);

  EXPECT_TRUE(client.try_ping());
  server->stop();
  server.reset();
  EXPECT_FALSE(client.try_ping());  // reports, never throws
}

TEST(Loopback, HolddownBoundsTheReconnectStorm) {
  // A dead backend must cost one SYN per holddown window, not one per
  // request — the router's pooled clients depend on this to keep a
  // down node cheap while still re-dialing lazily once it returns.
  svc::ServiceConfig cfg;
  cfg.workers = 1;
  svc::SimService service(cfg);
  auto server = std::make_unique<net::Server>(service);
  const std::uint16_t port = server->port();
  net::ClientConfig ccfg;
  ccfg.port = port;
  ccfg.max_reconnect_attempts = 0;
  ccfg.reconnect_holddown_seconds = 0.3;
  net::Client client(ccfg);
  EXPECT_NO_THROW(client.submit(small_spec()));
  const std::int64_t dials_alive = client.connect_attempts();

  server->stop();
  server.reset();

  // Hammer the dead address: every call fails fast, and at most two
  // dials happen (the one that discovers the death plus at most one
  // more if a window boundary slips by mid-loop).
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(client.try_ping());
  EXPECT_LE(client.connect_attempts(), dials_alive + 2);

  // Same port, fresh server: after the holddown window expires the next
  // request lazily re-dials and succeeds — no background reconnector.
  net::ServerConfig scfg;
  scfg.port = port;
  net::Server revived(service, scfg);
  std::this_thread::sleep_for(std::chrono::milliseconds(350));
  EXPECT_NO_THROW(client.submit(small_spec(9)));
  EXPECT_EQ(revived.metrics().replies(net::WireStatus::kOk), 1);
}

}  // namespace
}  // namespace gpawfd
