// Property sweep: randomized grid shapes, rank counts, batch sizes and
// approaches — the engine must always reproduce the sequential stencil,
// and its communication volume must match the decomposition's prediction.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "core/engine.hpp"
#include "core/testing.hpp"
#include "mp/thread_comm.hpp"

namespace gpawfd::core {
namespace {

using sched::Approach;
using sched::JobConfig;
using sched::Optimizations;
using sched::RunPlan;

struct Case {
  Approach approach;
  int total_cores;
  int cores_per_node;
  int batch;
  bool double_buffering;
  bool ramp;
};

class EngineProperty : public ::testing::TestWithParam<Case> {};

TEST_P(EngineProperty, MatchesSequentialOnRandomShapes) {
  const Case c = GetParam();
  gpawfd::Rng rng(0xC0FFEE ^ (static_cast<std::uint64_t>(c.total_cores) << 8) ^
          static_cast<std::uint64_t>(c.batch));
  for (int trial = 0; trial < 3; ++trial) {
    const Vec3 shape{8 + static_cast<std::int64_t>(rng.next_below(8)),
                     8 + static_cast<std::int64_t>(rng.next_below(8)),
                     8 + static_cast<std::int64_t>(rng.next_below(8))};
    const int ngrids = 1 + static_cast<int>(rng.next_below(12));
    const bool periodic = rng.next_below(4) != 0;

    JobConfig j;
    j.grid_shape = shape;
    j.ngrids = ngrids;
    j.ghost = 2;
    j.periodic = periodic;
    Optimizations o = Optimizations::all_on(c.batch);
    o.double_buffering = c.double_buffering;
    o.ramp_up = c.ramp;
    const auto plan =
        RunPlan::make(c.approach, j, o, c.total_cores, c.cores_per_node);
    const auto coeffs = stencil::Coeffs::laplacian(2);

    std::vector<grid::Array3D<double>> expected;
    for (int g = 0; g < ngrids; ++g)
      expected.push_back(testing::sequential_reference<double>(
          shape, j.ghost, g, coeffs, periodic));

    mp::ThreadWorld world(plan.nranks(), mp::ThreadMode::kMultiple);
    world.run([&](mp::ThreadComm& comm) {
      DistributedFd<double> engine(comm, plan, coeffs);
      const grid::Box3 box = plan.decomp().local_box(engine.coords());
      const auto n = static_cast<std::size_t>(ngrids);
      std::vector<grid::Array3D<double>> in(n), out(n);
      for (std::size_t g = 0; g < n; ++g) {
        in[g] = grid::Array3D<double>(box.shape(), j.ghost);
        out[g] = grid::Array3D<double>(box.shape(), j.ghost);
        testing::fill_local(in[g], box, static_cast<int>(g));
      }
      engine.apply_all(in, out);

      std::vector<bool> owned(n, false);
      for (int s = 0; s < plan.comm_streams_per_rank(); ++s)
        for (int g : plan.grids_of_stream(comm.rank(), s))
          owned[static_cast<std::size_t>(g)] = true;
      for (std::size_t g = 0; g < n; ++g) {
        if (!owned[g]) continue;
        out[g].for_each_interior([&](Vec3 p, double& v) {
          ASSERT_NEAR(v, expected[g].at(box.lo + p), 1e-12)
              << "trial " << trial << " shape " << shape << " grids "
              << ngrids << " periodic " << periodic << " rank "
              << comm.rank() << " grid " << g << " at " << p;
        });
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineProperty,
    ::testing::Values(
        Case{Approach::kFlatOriginal, 4, 4, 1, false, false},
        Case{Approach::kFlatOriginal, 8, 4, 1, false, false},
        Case{Approach::kFlatOptimized, 4, 4, 1, true, false},
        Case{Approach::kFlatOptimized, 8, 4, 2, true, true},
        Case{Approach::kFlatOptimized, 8, 4, 4, false, false},
        Case{Approach::kFlatOptimized, 12, 4, 3, true, true},
        Case{Approach::kHybridMultiple, 8, 4, 1, true, false},
        Case{Approach::kHybridMultiple, 8, 4, 2, true, true},
        Case{Approach::kHybridMultiple, 16, 4, 2, true, true},
        Case{Approach::kHybridMasterOnly, 8, 4, 2, true, true},
        Case{Approach::kHybridMasterOnly, 16, 4, 4, false, false},
        Case{Approach::kFlatOptimizedSubgroups, 8, 4, 2, true, true},
        Case{Approach::kFlatOptimizedSubgroups, 16, 4, 2, true, false}));

/// Communication accounting: total bytes sent by every rank must equal
/// the decomposition's predicted halo volume (grids x faces), for every
/// approach. This is the quantity the paper's Fig. 6 plots — and it is
/// also what the simulator must reproduce exactly.
class EngineCommVolume : public ::testing::TestWithParam<Approach> {};

TEST_P(EngineCommVolume, MatchesDecompositionPrediction) {
  const Approach a = GetParam();
  JobConfig j;
  j.grid_shape = {16, 12, 12};
  j.ngrids = 8;
  j.ghost = 2;
  const Optimizations o = a == Approach::kFlatOriginal
                              ? Optimizations::original()
                              : Optimizations::all_on(2);
  const auto plan = RunPlan::make(a, j, o, 8, 4);
  const auto coeffs = stencil::Coeffs::laplacian(2);

  mp::ThreadWorld world(plan.nranks(), mp::ThreadMode::kMultiple);
  std::vector<std::int64_t> sent(static_cast<std::size_t>(plan.nranks()));
  world.run([&](mp::ThreadComm& comm) {
    DistributedFd<double> engine(comm, plan, coeffs);
    const grid::Box3 box = plan.decomp().local_box(engine.coords());
    const auto n = static_cast<std::size_t>(j.ngrids);
    std::vector<grid::Array3D<double>> in(n), out(n);
    for (std::size_t g = 0; g < n; ++g) {
      in[g] = grid::Array3D<double>(box.shape(), j.ghost);
      out[g] = grid::Array3D<double>(box.shape(), j.ghost);
      testing::fill_local(in[g], box, static_cast<int>(g));
    }
    engine.apply_all(in, out);
    sent[static_cast<std::size_t>(comm.rank())] =
        comm.stats().bytes_sent.load();
  });

  for (int r = 0; r < plan.nranks(); ++r) {
    // Grids flowing through this rank's streams:
    std::int64_t grids = 0;
    for (int s = 0; s < plan.comm_streams_per_rank(); ++s)
      grids += std::ssize(plan.grids_of_stream(r, s));
    const std::int64_t expected =
        grids * plan.decomp().send_bytes(plan.coords_of_rank(r),
                                         j.elem_bytes);
    EXPECT_EQ(sent[static_cast<std::size_t>(r)], expected)
        << to_string(a) << " rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(AllApproaches, EngineCommVolume,
                         ::testing::Values(
                             Approach::kFlatOriginal,
                             Approach::kFlatOptimized,
                             Approach::kHybridMultiple,
                             Approach::kHybridMasterOnly,
                             Approach::kFlatOptimizedSubgroups));

}  // namespace
}  // namespace gpawfd::core
