// RPC front-end benchmark: what the wire costs. Warms svc::SimService's
// result cache with a fixed job set, measures the in-process hot path
// (submit + wait, no sockets) as the baseline, then drives the same
// workload through net::Server/net::Client over loopback TCP at 1, 4
// and 16 connections — sync round-trips, pipelined async submits, and a
// pipeline-window sweep (ClientConfig::pipeline_window) tracing the
// throughput-vs-p99 frontier, with the server's reply-coalescing factor
// (frames_out / writev flushes) recorded per point. Emits
// BENCH_net.json (--json <path>) with requests/s and p50/p99 per
// configuration so future PRs can track serving overhead. --smoke
// shrinks the request counts to a CI sanity pass (frontier not gated).
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "svc/service.hpp"
#include "trace/stats.hpp"

namespace {

using namespace gpawfd;

constexpr int kDistinctJobs = 8;
constexpr int kPipelineDepth = 8;

core::SimJobSpec job_spec(int job_id) {
  core::SimJobSpec spec;
  spec.approach = sched::Approach::kHybridMultiple;
  spec.job.grid_shape = Vec3::cube(48);
  spec.job.ngrids = 32 + 4 * job_id;
  spec.opt = sched::Optimizations::all_on(4);
  spec.total_cores = 64;
  return spec;
}

struct RunStats {
  double throughput_rps = 0;
  double p50_s = 0;
  double p99_s = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
};

/// Drive `requests` hot submits over `connections` threads, each with
/// its own net::Client. pipeline = 1 means sync round-trips.
RunStats run_rpc(std::uint16_t port, int connections, int requests,
                 int pipeline) {
  trace::LatencyHistogram latency;
  std::atomic<std::int64_t> completed{0}, failed{0};
  const int per_conn = requests / connections;
  const double t0 = trace::now_seconds();
  std::vector<std::thread> threads;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      net::ClientConfig cfg;
      cfg.port = port;
      // Belt and suspenders with the app-level window below: the client
      // itself refuses to run past the window, so a runaway submit loop
      // can never hit the server's per-connection in-flight ceiling.
      cfg.pipeline_window =
          pipeline > 1 ? static_cast<std::size_t>(pipeline) : 0;
      net::Client client(cfg);
      if (pipeline <= 1) {
        for (int i = 0; i < per_conn; ++i) {
          const double r0 = trace::now_seconds();
          try {
            client.submit(job_spec((c + i) % kDistinctJobs));
            latency.record(trace::now_seconds() - r0);
            completed.fetch_add(1, std::memory_order_relaxed);
          } catch (const net::RpcError&) {
            failed.fetch_add(1, std::memory_order_relaxed);
          }
        }
        return;
      }
      std::vector<std::pair<std::future<core::SimResult>, double>> window;
      auto settle_front = [&] {
        auto& [future, sent_at] = window.front();
        try {
          future.get();
          latency.record(trace::now_seconds() - sent_at);
          completed.fetch_add(1, std::memory_order_relaxed);
        } catch (const net::RpcError&) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
        window.erase(window.begin());
      };
      for (int i = 0; i < per_conn; ++i) {
        while (static_cast<int>(window.size()) >= pipeline) settle_front();
        try {
          window.emplace_back(
              client.submit_async(job_spec((c + i) % kDistinctJobs)),
              trace::now_seconds());
        } catch (const net::RpcError&) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
      while (!window.empty()) settle_front();
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = trace::now_seconds() - t0;
  RunStats s;
  s.completed = completed.load();
  s.failed = failed.load();
  s.throughput_rps = static_cast<double>(s.completed) / seconds;
  s.p50_s = latency.quantile(0.50);
  s.p99_s = latency.quantile(0.99);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gpawfd::bench;

  const bool smoke = flag_from_args(argc, argv, "--smoke");
  auto telemetry = sink_from_args(argc, argv);
  const int kRequests = smoke ? 512 : 4096;  // per config, across conns

  banner("RPC front-end: loopback serving cost over the in-process path",
         "length-prefixed TCP framing over svc::SimService (src/net)",
         "every request completes; sync p50 wire overhead stays in the "
         "sub-millisecond range on loopback");

  svc::ServiceConfig cfg;
  cfg.queue_capacity = 256;
  cfg.cache_capacity = 64;
  cfg.telemetry = telemetry;
  cfg.telemetry_period_seconds = 0.25;  // the bench runs for seconds
  svc::SimService service(cfg);

  // Warm the cache: after this, every request in the measured phases is
  // a hot hit, so the comparison isolates serving cost (framing, poll
  // loop, syscalls) from simulation cost.
  for (int j = 0; j < kDistinctJobs; ++j) service.run(job_spec(j));

  // ---- in-process baseline -------------------------------------------
  trace::LatencyHistogram inproc;
  const double base_t0 = trace::now_seconds();
  for (int i = 0; i < kRequests; ++i) {
    const double r0 = trace::now_seconds();
    service.run(job_spec(i % kDistinctJobs));
    inproc.record(trace::now_seconds() - r0);
  }
  const double base_seconds = trace::now_seconds() - base_t0;
  const double inproc_rps = static_cast<double>(kRequests) / base_seconds;

  // ---- over the wire ---------------------------------------------------
  net::Server server(service);
  const std::uint16_t port = server.port();
  const int conn_counts[] = {1, 4, 16};
  RunStats sync_stats[3];
  for (int i = 0; i < 3; ++i)
    sync_stats[i] = run_rpc(port, conn_counts[i], kRequests, /*pipeline=*/1);
  const RunStats piped =
      run_rpc(port, 4, kRequests, /*pipeline=*/kPipelineDepth);

  // ---- pipeline-window sweep: the throughput-vs-p99 frontier ----------
  // Two connections, window swept from sync round-trips to deep
  // pipelining. The server-side coalescing factor (reply frames per
  // writev) is sampled per point: pipelined replies queue behind one
  // connection and leave as one vectored write, which is where the
  // syscall savings come from.
  const int kWindows[] = {1, 4, 16, 32};
  constexpr int kWindowPoints =
      static_cast<int>(sizeof kWindows / sizeof kWindows[0]);
  RunStats window_stats[kWindowPoints];
  double window_coalesce[kWindowPoints];
  for (int i = 0; i < kWindowPoints; ++i) {
    const std::int64_t frames0 = server.metrics().frames_out.load();
    const std::int64_t flushes0 = server.metrics().flushes.load();
    window_stats[i] = run_rpc(port, 2, kRequests, kWindows[i]);
    const std::int64_t frames = server.metrics().frames_out.load() - frames0;
    const std::int64_t flushes =
        server.metrics().flushes.load() - flushes0;
    window_coalesce[i] =
        flushes > 0 ? static_cast<double>(frames) / flushes : 0;
  }

  // ---- report ---------------------------------------------------------
  Table t({"configuration", "req/s", "p50", "p99"});
  t.add_row({"in-process", fmt_fixed(inproc_rps, 0),
             fmt_seconds(inproc.quantile(0.5)),
             fmt_seconds(inproc.quantile(0.99))});
  for (int i = 0; i < 3; ++i)
    t.add_row({"rpc x" + std::to_string(conn_counts[i]) + " sync",
               fmt_fixed(sync_stats[i].throughput_rps, 0),
               fmt_seconds(sync_stats[i].p50_s),
               fmt_seconds(sync_stats[i].p99_s)});
  t.add_row({"rpc x4 pipeline " + std::to_string(kPipelineDepth),
             fmt_fixed(piped.throughput_rps, 0), fmt_seconds(piped.p50_s),
             fmt_seconds(piped.p99_s)});
  t.print(std::cout);

  std::cout << "\npipeline-window frontier (2 connections):\n";
  Table wt({"window", "req/s", "p50", "p99", "frames/writev"});
  for (int i = 0; i < kWindowPoints; ++i)
    wt.add_row({std::to_string(kWindows[i]),
                fmt_fixed(window_stats[i].throughput_rps, 0),
                fmt_seconds(window_stats[i].p50_s),
                fmt_seconds(window_stats[i].p99_s),
                fmt_fixed(window_coalesce[i], 2)});
  wt.print(std::cout);

  const double wire_overhead_p50 =
      sync_stats[0].p50_s - inproc.quantile(0.5);
  std::cout << "\nsync p50 wire overhead (1 conn): "
            << fmt_seconds(wire_overhead_p50) << "\n";
  std::cout << "server frames in/out: " << server.metrics().frames_in.load()
            << "/" << server.metrics().frames_out.load() << "\n";

  std::int64_t total_completed = piped.completed, total_failed = piped.failed;
  for (const RunStats& s : sync_stats) {
    total_completed += s.completed;
    total_failed += s.failed;
  }
  for (const RunStats& s : window_stats) {
    total_completed += s.completed;
    total_failed += s.failed;
  }
  const std::int64_t total_expected = (4 + kWindowPoints) * kRequests;
  const bool all_completed =
      total_failed == 0 && total_completed == total_expected;
  const bool overhead_bounded = wire_overhead_p50 < 0.005;
  std::cout << (all_completed ? "OK" : "FAIL") << ": " << total_completed
            << " of " << total_expected << " wire requests completed ("
            << total_failed << " failed)\n"
            << (overhead_bounded ? "OK" : "FAIL")
            << ": p50 wire overhead " << fmt_seconds(wire_overhead_p50)
            << " (need < 5 ms)\n";

  // The frontier's best point, not its deepest: past some window the
  // backlog just queues (p99 climbs, throughput sags) — that downturn is
  // part of the curve the JSON records.
  int best_window = 0;
  for (int i = 1; i < kWindowPoints; ++i)
    if (window_stats[i].throughput_rps >
        window_stats[best_window].throughput_rps)
      best_window = i;
  const double window_speedup =
      window_stats[0].throughput_rps > 0
          ? window_stats[best_window].throughput_rps /
                window_stats[0].throughput_rps
          : 0;
  const bool frontier_moved = window_speedup >= 1.2;
  if (smoke) {
    std::cout << "SKIP (smoke): pipeline window frontier "
              << fmt_fixed(window_speedup, 2) << "x (not gated)\n";
  } else {
    std::cout << (frontier_moved ? "OK" : "FAIL")
              << ": window " << kWindows[best_window] << " reaches "
              << fmt_fixed(window_speedup, 2)
              << "x the sync-window throughput (need >= 1.2x)\n";
  }

  std::string json_path = json_path_from_args(argc, argv);
  if (json_path.empty()) json_path = "BENCH_net.json";
  JsonReport report;
  report.mirror_to(telemetry, "bench.net_rpc");
  report.set("bench", std::string("net_rpc"));
  report.set("distinct_jobs", kDistinctJobs);
  report.set("requests_per_config", kRequests);
  report.set("workers", service.workers());
  report.set("inproc_rps", inproc_rps);
  report.set("inproc_p50_s", inproc.quantile(0.5));
  report.set("inproc_p99_s", inproc.quantile(0.99));
  for (int i = 0; i < 3; ++i) {
    const std::string prefix =
        "rpc_sync_" + std::to_string(conn_counts[i]) + "conn_";
    report.set(prefix + "rps", sync_stats[i].throughput_rps);
    report.set(prefix + "p50_s", sync_stats[i].p50_s);
    report.set(prefix + "p99_s", sync_stats[i].p99_s);
  }
  report.set("rpc_pipelined_4conn_rps", piped.throughput_rps);
  report.set("rpc_pipelined_4conn_p50_s", piped.p50_s);
  report.set("rpc_pipelined_4conn_p99_s", piped.p99_s);
  report.set("pipeline_depth", kPipelineDepth);
  for (int i = 0; i < kWindowPoints; ++i) {
    const std::string prefix =
        "window" + std::to_string(kWindows[i]) + "_";
    report.set(prefix + "rps", window_stats[i].throughput_rps);
    report.set(prefix + "p50_s", window_stats[i].p50_s);
    report.set(prefix + "p99_s", window_stats[i].p99_s);
    report.set(prefix + "frames_per_writev", window_coalesce[i]);
  }
  report.set("window_frontier_speedup", window_speedup);
  report.set("window_frontier_best",
             static_cast<std::int64_t>(kWindows[best_window]));
  report.set("server_flushes", server.metrics().flushes.load());
  report.set("wire_overhead_p50_s", wire_overhead_p50);
  report.set("completed", total_completed);
  report.set("failed", total_failed);
  if (report.write(json_path))
    std::cout << "JSON report -> " << json_path << "\n";
  if (telemetry) {
    telemetry->flush();
    std::cout << "telemetry -> " << telemetry->table().path() << " ("
              << telemetry->written() << " rows)\n";
  }

  return all_completed && overhead_bounded && (smoke || frontier_moved)
             ? 0
             : 1;
}
