// RPC front-end benchmark: what the wire costs. Warms svc::SimService's
// result cache with a fixed job set, measures the in-process hot path
// (submit + wait, no sockets) as the baseline, then drives the same
// workload through net::Server/net::Client over loopback TCP at 1, 4
// and 16 connections — sync round-trips and pipelined async submits.
// Emits BENCH_net.json (--json <path>) with requests/s and p50/p99 per
// configuration so future PRs can track serving overhead.
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "svc/service.hpp"
#include "trace/stats.hpp"

namespace {

using namespace gpawfd;

constexpr int kDistinctJobs = 8;
constexpr int kRequests = 4096;  // per configuration, split across conns
constexpr int kPipelineDepth = 8;

core::SimJobSpec job_spec(int job_id) {
  core::SimJobSpec spec;
  spec.approach = sched::Approach::kHybridMultiple;
  spec.job.grid_shape = Vec3::cube(48);
  spec.job.ngrids = 32 + 4 * job_id;
  spec.opt = sched::Optimizations::all_on(4);
  spec.total_cores = 64;
  return spec;
}

struct RunStats {
  double throughput_rps = 0;
  double p50_s = 0;
  double p99_s = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
};

/// Drive `requests` hot submits over `connections` threads, each with
/// its own net::Client. pipeline = 1 means sync round-trips.
RunStats run_rpc(std::uint16_t port, int connections, int requests,
                 int pipeline) {
  trace::LatencyHistogram latency;
  std::atomic<std::int64_t> completed{0}, failed{0};
  const int per_conn = requests / connections;
  const double t0 = trace::now_seconds();
  std::vector<std::thread> threads;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      net::ClientConfig cfg;
      cfg.port = port;
      net::Client client(cfg);
      if (pipeline <= 1) {
        for (int i = 0; i < per_conn; ++i) {
          const double r0 = trace::now_seconds();
          try {
            client.submit(job_spec((c + i) % kDistinctJobs));
            latency.record(trace::now_seconds() - r0);
            completed.fetch_add(1, std::memory_order_relaxed);
          } catch (const net::RpcError&) {
            failed.fetch_add(1, std::memory_order_relaxed);
          }
        }
        return;
      }
      std::vector<std::pair<std::future<core::SimResult>, double>> window;
      auto settle_front = [&] {
        auto& [future, sent_at] = window.front();
        try {
          future.get();
          latency.record(trace::now_seconds() - sent_at);
          completed.fetch_add(1, std::memory_order_relaxed);
        } catch (const net::RpcError&) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
        window.erase(window.begin());
      };
      for (int i = 0; i < per_conn; ++i) {
        while (static_cast<int>(window.size()) >= pipeline) settle_front();
        try {
          window.emplace_back(
              client.submit_async(job_spec((c + i) % kDistinctJobs)),
              trace::now_seconds());
        } catch (const net::RpcError&) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
      while (!window.empty()) settle_front();
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = trace::now_seconds() - t0;
  RunStats s;
  s.completed = completed.load();
  s.failed = failed.load();
  s.throughput_rps = static_cast<double>(s.completed) / seconds;
  s.p50_s = latency.quantile(0.50);
  s.p99_s = latency.quantile(0.99);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gpawfd::bench;

  banner("RPC front-end: loopback serving cost over the in-process path",
         "length-prefixed TCP framing over svc::SimService (src/net)",
         "every request completes; sync p50 wire overhead stays in the "
         "sub-millisecond range on loopback");

  svc::ServiceConfig cfg;
  cfg.queue_capacity = 256;
  cfg.cache_capacity = 64;
  svc::SimService service(cfg);

  // Warm the cache: after this, every request in the measured phases is
  // a hot hit, so the comparison isolates serving cost (framing, poll
  // loop, syscalls) from simulation cost.
  for (int j = 0; j < kDistinctJobs; ++j) service.run(job_spec(j));

  // ---- in-process baseline -------------------------------------------
  trace::LatencyHistogram inproc;
  const double base_t0 = trace::now_seconds();
  for (int i = 0; i < kRequests; ++i) {
    const double r0 = trace::now_seconds();
    service.run(job_spec(i % kDistinctJobs));
    inproc.record(trace::now_seconds() - r0);
  }
  const double base_seconds = trace::now_seconds() - base_t0;
  const double inproc_rps = static_cast<double>(kRequests) / base_seconds;

  // ---- over the wire ---------------------------------------------------
  net::Server server(service);
  const std::uint16_t port = server.port();
  const int conn_counts[] = {1, 4, 16};
  RunStats sync_stats[3];
  for (int i = 0; i < 3; ++i)
    sync_stats[i] = run_rpc(port, conn_counts[i], kRequests, /*pipeline=*/1);
  const RunStats piped =
      run_rpc(port, 4, kRequests, /*pipeline=*/kPipelineDepth);

  // ---- report ---------------------------------------------------------
  Table t({"configuration", "req/s", "p50", "p99"});
  t.add_row({"in-process", fmt_fixed(inproc_rps, 0),
             fmt_seconds(inproc.quantile(0.5)),
             fmt_seconds(inproc.quantile(0.99))});
  for (int i = 0; i < 3; ++i)
    t.add_row({"rpc x" + std::to_string(conn_counts[i]) + " sync",
               fmt_fixed(sync_stats[i].throughput_rps, 0),
               fmt_seconds(sync_stats[i].p50_s),
               fmt_seconds(sync_stats[i].p99_s)});
  t.add_row({"rpc x4 pipeline " + std::to_string(kPipelineDepth),
             fmt_fixed(piped.throughput_rps, 0), fmt_seconds(piped.p50_s),
             fmt_seconds(piped.p99_s)});
  t.print(std::cout);

  const double wire_overhead_p50 =
      sync_stats[0].p50_s - inproc.quantile(0.5);
  std::cout << "\nsync p50 wire overhead (1 conn): "
            << fmt_seconds(wire_overhead_p50) << "\n";
  std::cout << "server frames in/out: " << server.metrics().frames_in.load()
            << "/" << server.metrics().frames_out.load() << "\n";

  std::int64_t total_completed = piped.completed, total_failed = piped.failed;
  for (const RunStats& s : sync_stats) {
    total_completed += s.completed;
    total_failed += s.failed;
  }
  const bool all_completed =
      total_failed == 0 && total_completed == 4 * kRequests;
  const bool overhead_bounded = wire_overhead_p50 < 0.005;
  std::cout << (all_completed ? "OK" : "FAIL") << ": " << total_completed
            << " of " << 4 * kRequests << " wire requests completed ("
            << total_failed << " failed)\n"
            << (overhead_bounded ? "OK" : "FAIL")
            << ": p50 wire overhead " << fmt_seconds(wire_overhead_p50)
            << " (need < 5 ms)\n";

  std::string json_path = json_path_from_args(argc, argv);
  if (json_path.empty()) json_path = "BENCH_net.json";
  JsonReport report;
  report.set("bench", std::string("net_rpc"));
  report.set("distinct_jobs", kDistinctJobs);
  report.set("requests_per_config", kRequests);
  report.set("workers", service.workers());
  report.set("inproc_rps", inproc_rps);
  report.set("inproc_p50_s", inproc.quantile(0.5));
  report.set("inproc_p99_s", inproc.quantile(0.99));
  for (int i = 0; i < 3; ++i) {
    const std::string prefix =
        "rpc_sync_" + std::to_string(conn_counts[i]) + "conn_";
    report.set(prefix + "rps", sync_stats[i].throughput_rps);
    report.set(prefix + "p50_s", sync_stats[i].p50_s);
    report.set(prefix + "p99_s", sync_stats[i].p99_s);
  }
  report.set("rpc_pipelined_4conn_rps", piped.throughput_rps);
  report.set("rpc_pipelined_4conn_p50_s", piped.p50_s);
  report.set("rpc_pipelined_4conn_p99_s", piped.p99_s);
  report.set("pipeline_depth", kPipelineDepth);
  report.set("wire_overhead_p50_s", wire_overhead_p50);
  report.set("completed", total_completed);
  report.set("failed", total_failed);
  if (report.write(json_path))
    std::cout << "JSON report -> " << json_path << "\n";

  return all_completed && overhead_bounded ? 0 : 1;
}
