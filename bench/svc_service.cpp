// Service-layer benchmark: the simulated machine room behind
// svc::SimService. Measures (1) cold path — distinct jobs that must run
// the simulator, (2) hot path — a client swarm re-requesting the same
// jobs, answered by the single-flight LRU cache, (3) admission control
// at a deliberately tiny queue bound, (4) fault absorption — a seeded
// FaultyExecutor (throws, stragglers, hangs) behind a RetryPolicy, so
// the retry/timeout counters land in the report. Emits BENCH_svc.json
// (5) persistence — the same jobs run in two services sharing a
// --cache-dir-style store: the first pays cold simulation and persists,
// the second warm-loads the store and must re-run nothing, (6) batched
// dispatch — a throughput-vs-p99 frontier swept over batch_max with a
// near-free executor so dispatch overhead dominates, (7) the interactive
// affinity lane probed under saturating normal-priority load. Emits
// BENCH_svc.json (--json <path>, default BENCH_svc.json in the cwd) with
// throughput, p50/p99 latency, the hit/cold speedup, the hit ratio, the
// retry/timeout/gave-up counters, the cold-vs-warm-start numbers, and
// the batch frontier so future PRs can track service performance, fault
// handling, restart-recovery, and dispatch-amortization behaviour.
// --smoke shrinks every phase to a seconds-long CI sanity pass (frontier
// assertions are reported but not enforced at smoke sizes — too noisy).
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/bench_util.hpp"
#include "svc/fault.hpp"
#include "svc/service.hpp"
#include "trace/stats.hpp"

namespace {

using namespace gpawfd;

core::SimJobSpec job_spec(int job_id) {
  core::SimJobSpec spec;
  spec.approach = sched::Approach::kHybridMultiple;
  spec.job.grid_shape = Vec3::cube(48);
  spec.job.ngrids = 32 + 4 * job_id;
  spec.opt = sched::Optimizations::all_on(4);
  spec.total_cores = 64;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gpawfd::bench;

  const bool smoke = flag_from_args(argc, argv, "--smoke");
  auto telemetry = sink_from_args(argc, argv);
  constexpr int kDistinctJobs = 8;
  const int kClients = smoke ? 4 : 16;
  const int kRequestsPerClient = smoke ? 64 : 256;

  banner("Simulation service: cache, single-flight, admission control",
         "service layer over the IPDPS'09 engine (this repo, src/svc)",
         "cache hits >= 10x faster than cold simulations; rejects, "
         "never blocks, past the queue bound");

  svc::ServiceConfig cfg;
  cfg.queue_capacity = 256;
  cfg.cache_capacity = 64;
  cfg.telemetry = telemetry;
  cfg.telemetry_period_seconds = 0.25;  // the bench runs for seconds
  svc::SimService service(cfg);
  std::cout << "workers: " << service.workers() << ", queue capacity "
            << cfg.queue_capacity << ", cache capacity "
            << cfg.cache_capacity << "\n\n";

  // ---- phase 1: cold -------------------------------------------------
  trace::LatencyHistogram cold;
  for (int j = 0; j < kDistinctJobs; ++j) {
    const double t0 = trace::now_seconds();
    service.run(job_spec(j));
    cold.record(trace::now_seconds() - t0);
  }

  // ---- phase 2: hot client swarm --------------------------------------
  trace::LatencyHistogram hot;
  std::atomic<std::int64_t> completed{0};
  const double swarm_t0 = trace::now_seconds();
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const int job_id = (c + i) % kDistinctJobs;
        const double t0 = trace::now_seconds();
        svc::Ticket t = service.submit(job_spec(job_id));
        if (t.rejected()) continue;
        t.result.wait();
        hot.record(trace::now_seconds() - t0);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  const double swarm_seconds = trace::now_seconds() - swarm_t0;
  const double throughput =
      static_cast<double>(completed.load()) / swarm_seconds;

  // ---- phase 3: admission control at a tiny bound ---------------------
  svc::ServiceConfig tiny;
  tiny.workers = 1;
  tiny.queue_capacity = 2;
  tiny.cache_capacity = 4;
  std::int64_t flood_rejected = 0, flood_accepted = 0;
  {
    svc::SimService bounded(tiny);
    for (int i = 0; i < 32; ++i) {
      svc::Ticket t = bounded.submit(job_spec(i));  // 32 distinct cold jobs
      if (t.status == svc::SubmitStatus::kRejectedQueueFull)
        ++flood_rejected;
      else if (!t.rejected())
        ++flood_accepted;
    }
  }  // drain

  // ---- phase 4: fault absorption under a retry policy ------------------
  // Seeded, deterministic chaos: ~45% of keys fault (throw / straggle /
  // hang) on their first attempt, and the retry policy must recover
  // every one of them — gave_up == 0 is the pass criterion.
  svc::FaultConfig fault_cfg;
  fault_cfg.seed = 42;
  fault_cfg.throw_probability = 0.25;
  fault_cfg.delay_probability = 0.15;
  fault_cfg.hang_probability = 0.05;
  fault_cfg.fail_attempts = 1;  // every fault recovers on the first retry
  fault_cfg.delay_seconds = 0.030;
  fault_cfg.jitter_seconds = 0.010;
  auto faulty = std::make_shared<svc::FaultyExecutor>(
      [](const core::SimJobSpec& spec) {
        core::SimResult r;
        r.seconds = static_cast<double>(spec.job.ngrids);
        return r;
      },
      fault_cfg);

  svc::ServiceConfig chaos_cfg;
  chaos_cfg.workers = 4;
  chaos_cfg.queue_capacity = 256;
  chaos_cfg.executor = [faulty](const core::SimJobSpec& s) {
    return (*faulty)(s);
  };
  chaos_cfg.retry.max_attempts = 3;
  chaos_cfg.retry.initial_backoff_seconds = 0.0005;
  chaos_cfg.retry.max_backoff_seconds = 0.004;
  chaos_cfg.retry.attempt_timeout_seconds = 0.010;  // bounds every hang

  const int kChaosJobs = smoke ? 32 : 64;
  std::int64_t chaos_completed = 0, chaos_failed = 0;
  std::int64_t retries, timeouts, gave_up;
  double attempt_p50, attempt_p99;
  const double chaos_t0 = trace::now_seconds();
  double chaos_seconds;
  {
    svc::SimService chaos(chaos_cfg);
    std::vector<svc::Ticket> tickets;
    for (int j = 0; j < kChaosJobs; ++j)
      tickets.push_back(chaos.submit(job_spec(100 + j)));
    for (auto& t : tickets) {
      if (t.rejected()) continue;
      try {
        t.result.get();
        ++chaos_completed;
      } catch (const svc::ServiceError&) {
        ++chaos_failed;
      }
    }
    chaos_seconds = trace::now_seconds() - chaos_t0;
    const auto& cm = chaos.metrics();
    retries = cm.retries.load();
    timeouts = cm.timeouts.load();
    gave_up = cm.gave_up.load();
    attempt_p50 = cm.attempt_time.quantile(0.50);
    attempt_p99 = cm.attempt_time.quantile(0.99);
  }

  // ---- phase 5: cold start vs warm start (persistent store) -----------
  // Two services share one store directory, sequentially — the same
  // restart a SIGKILLed server would make, minus the SIGKILL (the
  // torture suite covers torn logs; this measures the payoff).
  const std::filesystem::path store_dir =
      std::filesystem::temp_directory_path() /
      ("gpawfd_bench_cache_" + std::to_string(::getpid()));
  std::filesystem::remove_all(store_dir);
  constexpr int kWarmJobs = 8;
  std::int64_t persisted = 0, warm_loaded = 0, warm_executed = 0;
  double cold_start_seconds, warm_start_seconds;
  {
    svc::ServiceConfig pc;
    pc.cache_dir = store_dir.string();
    svc::SimService first(pc);
    const double t0 = trace::now_seconds();
    for (int j = 0; j < kWarmJobs; ++j) first.run(job_spec(j));
    cold_start_seconds = trace::now_seconds() - t0;
    first.shutdown();  // drains the persister: everything on disk
    persisted = first.persister()->written();
  }
  {
    svc::ServiceConfig pc;
    pc.cache_dir = store_dir.string();
    svc::SimService second(pc);
    second.wait_warm_loaded();  // the load runs in the background now
    warm_loaded = second.metrics().warm_loaded.load();
    const double t0 = trace::now_seconds();
    for (int j = 0; j < kWarmJobs; ++j) second.run(job_spec(j));
    warm_start_seconds = trace::now_seconds() - t0;
    warm_executed = second.metrics().executed.load();
  }
  std::filesystem::remove_all(store_dir);
  const double warm_speedup =
      warm_start_seconds > 0 ? cold_start_seconds / warm_start_seconds : 0;

  // ---- phase 6: batched dispatch throughput-vs-p99 frontier -----------
  // Distinct cold jobs through a near-free executor, so per-job dispatch
  // overhead (queue wake, metrics, persister hand-off) is the thing
  // measured; each batch_max gets a fresh service + fresh store, the
  // interactive lane is off and the ramp is off (the ramp is the
  // production latency guard — here we measure raw amortization), one
  // worker so a real backlog forms against two producers, and producers
  // self-pace on queue depth so admission never rejects. Latency is
  // submit -> continuation (queue wait included — batching must not buy
  // throughput by letting the backlog soak).
  struct BatchPoint {
    std::size_t batch_max = 1;
    double rps = 0, p50_s = 0, p99_s = 0;
    std::int64_t batches = 0, batched_jobs = 0;
  };
  const int kSweepJobs = smoke ? 2000 : 21000;
  const std::size_t kSweepBatchMax[] = {1, 8, 32};
  constexpr int kSweepPoints =
      static_cast<int>(sizeof kSweepBatchMax / sizeof kSweepBatchMax[0]);
  BatchPoint frontier[kSweepPoints];
  for (int s = 0; s < kSweepPoints; ++s) {
    BatchPoint& pt = frontier[s];
    pt.batch_max = kSweepBatchMax[s];
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("gpawfd_bench_batch_" + std::to_string(::getpid()) + "_" +
         std::to_string(pt.batch_max));
    std::filesystem::remove_all(dir);
    svc::ServiceConfig bc;
    bc.workers = 4;
    bc.queue_capacity = 1024;
    bc.cache_capacity = 256;
    bc.batch_max = pt.batch_max;
    bc.batch_ramp = false;
    bc.batch_linger_us = pt.batch_max > 1 ? 300 : 0;  // coalesced dispatch
    bc.reserve_interactive_lane = false;  // equal workers across configs
    bc.cache_dir = dir.string();
    bc.persist_queue_capacity = 4096;
    bc.executor = [](const core::SimJobSpec& spec) {
      core::SimResult r;
      r.seconds = static_cast<double>(spec.job.ngrids);
      return r;
    };
    trace::LatencyHistogram lat;
    std::atomic<std::int64_t> settled{0};
    double elapsed;
    {
      svc::SimService sv(bc);
      constexpr int kProducers = 3;
      const double t0 = trace::now_seconds();
      std::vector<std::thread> producers;
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
          for (int i = 0; i < kSweepJobs / kProducers; ++i) {
            // Self-pace to a bounded backlog, identical across configs:
            // at saturation p99 *is* the standing backlog over the drain
            // rate, so the depth cap must be the same for every batch_max
            // or the gate compares pacing policy instead of dispatch.
            // 128 is deep enough to fill batch_max=32 units through the
            // linger, shallow enough that one backlog's wait stays within
            // a histogram bucket of the batch_max=1 baseline's.
            if ((i & 7) == 0)  // queue_depth takes the lock; check rarely
              while (sv.queue_depth() > 128) std::this_thread::yield();
            core::SimJobSpec spec = job_spec(0);
            spec.job.ngrids = 1000 + p * 1000000 + i;  // all keys distinct
            const double s0 = trace::now_seconds();
            sv.submit_then(spec, svc::Priority::kNormal,
                           [&, s0](const core::SimResult*,
                                   std::exception_ptr) {
                             lat.record(trace::now_seconds() - s0);
                             settled.fetch_add(1, std::memory_order_relaxed);
                           });
          }
        });
      }
      for (auto& th : producers) th.join();
      sv.shutdown();  // drain: every accepted job settles before this returns
      elapsed = trace::now_seconds() - t0;
      pt.batches = sv.metrics().batches.load();
      pt.batched_jobs = sv.metrics().batched_jobs.load();
    }
    std::filesystem::remove_all(dir);
    pt.rps = elapsed > 0 ? static_cast<double>(settled.load()) / elapsed : 0;
    pt.p50_s = lat.quantile(0.50);
    pt.p99_s = lat.quantile(0.99);
  }
  const BatchPoint& base_pt = frontier[0];
  const BatchPoint* best_pt = &frontier[0];
  for (int s = 1; s < kSweepPoints; ++s)
    if (frontier[s].rps > best_pt->rps) best_pt = &frontier[s];
  const double frontier_speedup =
      base_pt.rps > 0 ? best_pt->rps / base_pt.rps : 0;
  const double frontier_p99_ratio =
      base_pt.p99_s > 0 ? best_pt->p99_s / base_pt.p99_s : 0;

  // ---- phase 7: interactive lane under saturating normal load ---------
  // A 1 ms sleep executor (so the single-core box can schedule the probe
  // threads while workers "run" jobs), one producer keeping a deep
  // normal-priority backlog, and periodic kInteractive probes. With the
  // affinity lane, a probe's latency is one executor run plus wakeups —
  // it must never queue behind the backlog the general workers chew.
  const int kProbes = smoke ? 20 : 50;
  trace::LatencyHistogram probe_lat, normal_lat;
  std::int64_t lane_normal_completed = 0;
  bool lane_active = false;
  {
    svc::ServiceConfig lc;
    lc.workers = 2;
    lc.queue_capacity = 256;
    lc.cache_capacity = 512;
    lc.batch_max = 8;  // lane requires batching mode + >= 2 workers
    lc.executor = [](const core::SimJobSpec& spec) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      core::SimResult r;
      r.seconds = static_cast<double>(spec.job.ngrids);
      return r;
    };
    svc::SimService sv(lc);
    lane_active = sv.has_interactive_lane();
    std::atomic<bool> stop{false};
    std::atomic<std::int64_t> normal_done{0};
    std::thread producer([&] {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        if (sv.queue_depth() > 64) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        core::SimJobSpec spec = job_spec(0);
        spec.job.ngrids = 5000000 + i;
        const double s0 = trace::now_seconds();
        sv.submit_then(spec, svc::Priority::kNormal,
                       [&, s0](const core::SimResult*, std::exception_ptr) {
                         normal_lat.record(trace::now_seconds() - s0);
                         normal_done.fetch_add(1, std::memory_order_relaxed);
                       });
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));  // backlog
    for (int i = 0; i < kProbes; ++i) {
      core::SimJobSpec spec = job_spec(0);
      spec.job.ngrids = 9000000 + i;
      const double s0 = trace::now_seconds();
      sv.run(spec, svc::Priority::kInteractive);
      probe_lat.record(trace::now_seconds() - s0);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    stop.store(true);
    producer.join();
    sv.shutdown();
    lane_normal_completed = normal_done.load();
  }
  const double lane_probe_p99 = probe_lat.quantile(0.99);
  const double lane_normal_p50 = normal_lat.quantile(0.50);

  // ---- report ---------------------------------------------------------
  const double cold_mean = cold.mean_seconds();
  const double hot_p50 = hot.quantile(0.50);
  const double hot_p99 = hot.quantile(0.99);
  const double speedup = hot_p50 > 0 ? cold_mean / hot_p50 : 0;
  const double hit_ratio = service.metrics().hit_ratio();

  Table t({"metric", "value"});
  t.add_row({"cold latency (mean)", fmt_seconds(cold_mean)});
  t.add_row({"cold latency (max)", fmt_seconds(cold.max_seconds())});
  t.add_row({"hot latency (p50)", fmt_seconds(hot_p50)});
  t.add_row({"hot latency (p99)", fmt_seconds(hot_p99)});
  t.add_row({"hit/cold speedup", fmt_fixed(speedup, 0) + "x"});
  t.add_row({"swarm throughput", fmt_fixed(throughput, 0) + " req/s"});
  t.add_row({"cache hit ratio", fmt_fixed(100 * hit_ratio, 1) + "%"});
  t.add_row({"flood: accepted", std::to_string(flood_accepted)});
  t.add_row({"flood: rejected", std::to_string(flood_rejected)});
  t.add_row({"chaos: completed", std::to_string(chaos_completed)});
  t.add_row({"chaos: failed", std::to_string(chaos_failed)});
  t.add_row({"chaos: retries", std::to_string(retries)});
  t.add_row({"chaos: timeouts", std::to_string(timeouts)});
  t.add_row({"chaos: gave up", std::to_string(gave_up)});
  t.add_row({"chaos: attempt p50", fmt_seconds(attempt_p50)});
  t.add_row({"chaos: attempt p99", fmt_seconds(attempt_p99)});
  t.add_row({"persist: results stored", std::to_string(persisted)});
  t.add_row({"persist: warm-loaded", std::to_string(warm_loaded)});
  t.add_row({"persist: cold start", fmt_seconds(cold_start_seconds)});
  t.add_row({"persist: warm start", fmt_seconds(warm_start_seconds)});
  t.add_row({"persist: warm speedup", fmt_fixed(warm_speedup, 0) + "x"});
  t.print(std::cout);

  std::cout << "\nbatched dispatch frontier (" << kSweepJobs
            << " cold jobs, near-free executor, lane off):\n";
  Table bt({"batch_max", "req/s", "p50", "p99", "jobs/dispatch"});
  for (int s = 0; s < kSweepPoints; ++s) {
    const BatchPoint& pt = frontier[s];
    const double per_dispatch =
        pt.batches > 0
            ? static_cast<double>(pt.batched_jobs) / pt.batches
            : 0;
    bt.add_row({std::to_string(pt.batch_max), fmt_fixed(pt.rps, 0),
                fmt_seconds(pt.p50_s), fmt_seconds(pt.p99_s),
                fmt_fixed(per_dispatch, 1)});
  }
  bt.print(std::cout);
  std::cout << "interactive lane: probe p99 " << fmt_seconds(lane_probe_p99)
            << " vs normal p50 " << fmt_seconds(lane_normal_p50) << " ("
            << lane_normal_completed << " normal jobs completed, lane "
            << (lane_active ? "on" : "OFF") << ")\n";

  std::cout << "\nservice metrics snapshot:\n"
            << service.metrics_snapshot() << "\n";

  const bool hit_fast_enough = speedup >= 10.0;
  const bool admission_sheds = flood_rejected > 0;
  const bool faults_absorbed =
      gave_up == 0 && chaos_failed == 0 && retries > 0;
  std::cout << (hit_fast_enough ? "OK" : "FAIL")
            << ": cache hits are " << fmt_fixed(speedup, 0)
            << "x faster than cold runs (need >= 10x)\n"
            << (admission_sheds ? "OK" : "FAIL")
            << ": admission control rejected " << flood_rejected
            << " of 32 past-the-bound requests\n"
            << (faults_absorbed ? "OK" : "FAIL")
            << ": retry policy absorbed every injected fault (" << retries
            << " retries, " << timeouts << " timeouts, " << gave_up
            << " gave up) in " << fmt_seconds(chaos_seconds) << "\n";

  const bool warm_restart_free = warm_executed == 0 && warm_loaded > 0;
  std::cout << (warm_restart_free ? "OK" : "FAIL")
            << ": warm restart re-ran " << warm_executed << " of "
            << kWarmJobs << " simulations (warm-loaded " << warm_loaded
            << " from the store, " << fmt_fixed(warm_speedup, 0)
            << "x faster start)\n";

  // The frontier must move: some batch_max > 1 beats batch_max = 1 on
  // throughput without giving the latency back. Smoke sizes are too
  // short to assert on — report the numbers but don't gate.
  const bool frontier_moved = best_pt->batch_max > 1 &&
                              frontier_speedup >= 1.3 &&
                              frontier_p99_ratio <= 1.2;
  const bool lane_isolated =
      lane_active && lane_probe_p99 < lane_normal_p50;
  if (smoke) {
    std::cout << "SKIP (smoke): batch frontier " << fmt_fixed(frontier_speedup, 2)
              << "x at batch_max=" << best_pt->batch_max << ", p99 ratio "
              << fmt_fixed(frontier_p99_ratio, 2) << " (not gated)\n"
              << "SKIP (smoke): lane probe p99 "
              << fmt_seconds(lane_probe_p99) << " vs normal p50 "
              << fmt_seconds(lane_normal_p50) << " (not gated)\n";
  } else {
    std::cout << (frontier_moved ? "OK" : "FAIL")
              << ": batched dispatch reaches "
              << fmt_fixed(frontier_speedup, 2) << "x throughput at batch_max="
              << best_pt->batch_max << " with p99 at "
              << fmt_fixed(frontier_p99_ratio, 2)
              << "x the batch_max=1 baseline (need >= 1.3x, <= 1.2x)\n"
              << (lane_isolated ? "OK" : "FAIL")
              << ": interactive probes (p99 " << fmt_seconds(lane_probe_p99)
              << ") undercut saturated normal-priority p50 ("
              << fmt_seconds(lane_normal_p50) << ") through the lane\n";
  }

  std::string json_path = json_path_from_args(argc, argv);
  if (json_path.empty()) json_path = "BENCH_svc.json";
  JsonReport report;
  report.mirror_to(telemetry, "bench.svc_service");
  report.set("bench", std::string("svc_service"));
  report.set("distinct_jobs", kDistinctJobs);
  report.set("clients", kClients);
  report.set("requests_per_client", kRequestsPerClient);
  report.set("workers", service.workers());
  report.set("cold_latency_mean_s", cold_mean);
  report.set("cold_latency_max_s", cold.max_seconds());
  report.set("hot_latency_p50_s", hot_p50);
  report.set("hot_latency_p99_s", hot_p99);
  report.set("hit_over_cold_speedup", speedup);
  report.set("throughput_rps", throughput);
  report.set("cache_hit_ratio", hit_ratio);
  report.set("executed", service.metrics().executed.load());
  report.set("dedup_joined", service.metrics().dedup_joined.load());
  report.set("flood_accepted", flood_accepted);
  report.set("flood_rejected", flood_rejected);
  report.set("chaos_jobs", kChaosJobs);
  report.set("chaos_completed", chaos_completed);
  report.set("chaos_failed", chaos_failed);
  report.set("retries", retries);
  report.set("timeouts", timeouts);
  report.set("gave_up", gave_up);
  report.set("injected_throws", faulty->injected_throws());
  report.set("injected_delays", faulty->injected_delays());
  report.set("injected_hangs", faulty->injected_hangs());
  report.set("attempt_p50_s", attempt_p50);
  report.set("attempt_p99_s", attempt_p99);
  report.set("chaos_seconds", chaos_seconds);
  report.set("warm_jobs", kWarmJobs);
  report.set("persisted", persisted);
  report.set("warm_loaded", warm_loaded);
  report.set("warm_executed", warm_executed);
  report.set("cold_start_s", cold_start_seconds);
  report.set("warm_start_s", warm_start_seconds);
  report.set("warm_over_cold_speedup", warm_speedup);
  report.set("batch_sweep_jobs", kSweepJobs);
  for (int s = 0; s < kSweepPoints; ++s) {
    const BatchPoint& pt = frontier[s];
    const std::string prefix =
        "batch" + std::to_string(pt.batch_max) + "_";
    report.set(prefix + "rps", pt.rps);
    report.set(prefix + "p50_s", pt.p50_s);
    report.set(prefix + "p99_s", pt.p99_s);
    report.set(prefix + "dispatches", pt.batches);
    report.set(prefix + "jobs_per_dispatch",
               pt.batches > 0
                   ? static_cast<double>(pt.batched_jobs) / pt.batches
                   : 0.0);
  }
  report.set("batch_frontier_speedup", frontier_speedup);
  report.set("batch_frontier_p99_ratio", frontier_p99_ratio);
  report.set("batch_frontier_best", static_cast<std::int64_t>(
                                        best_pt->batch_max));
  report.set("lane_active", static_cast<std::int64_t>(lane_active ? 1 : 0));
  report.set("lane_probe_p99_s", lane_probe_p99);
  report.set("lane_normal_p50_s", lane_normal_p50);
  report.set("lane_normal_completed", lane_normal_completed);
  if (report.write(json_path))
    std::cout << "JSON report -> " << json_path << "\n";
  if (telemetry) {
    telemetry->flush();
    std::cout << "telemetry -> " << telemetry->table().path() << " ("
              << telemetry->written() << " rows)\n";
  }

  const bool gates = hit_fast_enough && admission_sheds && faults_absorbed &&
                     warm_restart_free &&
                     (smoke || (frontier_moved && lane_isolated));
  return gates ? 0 : 1;
}
