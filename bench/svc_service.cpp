// Service-layer benchmark: the simulated machine room behind
// svc::SimService. Measures (1) cold path — distinct jobs that must run
// the simulator, (2) hot path — a client swarm re-requesting the same
// jobs, answered by the single-flight LRU cache, (3) admission control
// at a deliberately tiny queue bound. Emits BENCH_svc.json
// (--json <path>, default BENCH_svc.json in the cwd) with throughput,
// p50/p99 latency, the hit/cold speedup, and the hit ratio so future
// PRs can track service performance.
#include <atomic>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "svc/service.hpp"
#include "trace/stats.hpp"

namespace {

using namespace gpawfd;

core::SimJobSpec job_spec(int job_id) {
  core::SimJobSpec spec;
  spec.approach = sched::Approach::kHybridMultiple;
  spec.job.grid_shape = Vec3::cube(48);
  spec.job.ngrids = 32 + 4 * job_id;
  spec.opt = sched::Optimizations::all_on(4);
  spec.total_cores = 64;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gpawfd::bench;

  constexpr int kDistinctJobs = 8;
  constexpr int kClients = 16;
  constexpr int kRequestsPerClient = 256;

  banner("Simulation service: cache, single-flight, admission control",
         "service layer over the IPDPS'09 engine (this repo, src/svc)",
         "cache hits >= 10x faster than cold simulations; rejects, "
         "never blocks, past the queue bound");

  svc::ServiceConfig cfg;
  cfg.queue_capacity = 256;
  cfg.cache_capacity = 64;
  svc::SimService service(cfg);
  std::cout << "workers: " << service.workers() << ", queue capacity "
            << cfg.queue_capacity << ", cache capacity "
            << cfg.cache_capacity << "\n\n";

  // ---- phase 1: cold -------------------------------------------------
  trace::LatencyHistogram cold;
  for (int j = 0; j < kDistinctJobs; ++j) {
    const double t0 = trace::now_seconds();
    service.run(job_spec(j));
    cold.record(trace::now_seconds() - t0);
  }

  // ---- phase 2: hot client swarm --------------------------------------
  trace::LatencyHistogram hot;
  std::atomic<std::int64_t> completed{0};
  const double swarm_t0 = trace::now_seconds();
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const int job_id = (c + i) % kDistinctJobs;
        const double t0 = trace::now_seconds();
        svc::Ticket t = service.submit(job_spec(job_id));
        if (t.rejected()) continue;
        t.result.wait();
        hot.record(trace::now_seconds() - t0);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  const double swarm_seconds = trace::now_seconds() - swarm_t0;
  const double throughput =
      static_cast<double>(completed.load()) / swarm_seconds;

  // ---- phase 3: admission control at a tiny bound ---------------------
  svc::ServiceConfig tiny;
  tiny.workers = 1;
  tiny.queue_capacity = 2;
  tiny.cache_capacity = 4;
  std::int64_t flood_rejected = 0, flood_accepted = 0;
  {
    svc::SimService bounded(tiny);
    for (int i = 0; i < 32; ++i) {
      svc::Ticket t = bounded.submit(job_spec(i));  // 32 distinct cold jobs
      if (t.status == svc::SubmitStatus::kRejectedQueueFull)
        ++flood_rejected;
      else if (!t.rejected())
        ++flood_accepted;
    }
  }  // drain

  // ---- report ---------------------------------------------------------
  const double cold_mean = cold.mean_seconds();
  const double hot_p50 = hot.quantile(0.50);
  const double hot_p99 = hot.quantile(0.99);
  const double speedup = hot_p50 > 0 ? cold_mean / hot_p50 : 0;
  const double hit_ratio = service.metrics().hit_ratio();

  Table t({"metric", "value"});
  t.add_row({"cold latency (mean)", fmt_seconds(cold_mean)});
  t.add_row({"cold latency (max)", fmt_seconds(cold.max_seconds())});
  t.add_row({"hot latency (p50)", fmt_seconds(hot_p50)});
  t.add_row({"hot latency (p99)", fmt_seconds(hot_p99)});
  t.add_row({"hit/cold speedup", fmt_fixed(speedup, 0) + "x"});
  t.add_row({"swarm throughput", fmt_fixed(throughput, 0) + " req/s"});
  t.add_row({"cache hit ratio", fmt_fixed(100 * hit_ratio, 1) + "%"});
  t.add_row({"flood: accepted", std::to_string(flood_accepted)});
  t.add_row({"flood: rejected", std::to_string(flood_rejected)});
  t.print(std::cout);

  std::cout << "\nservice metrics snapshot:\n"
            << service.metrics_snapshot() << "\n";

  const bool hit_fast_enough = speedup >= 10.0;
  const bool admission_sheds = flood_rejected > 0;
  std::cout << (hit_fast_enough ? "OK" : "FAIL")
            << ": cache hits are " << fmt_fixed(speedup, 0)
            << "x faster than cold runs (need >= 10x)\n"
            << (admission_sheds ? "OK" : "FAIL")
            << ": admission control rejected " << flood_rejected
            << " of 32 past-the-bound requests\n";

  std::string json_path = json_path_from_args(argc, argv);
  if (json_path.empty()) json_path = "BENCH_svc.json";
  JsonReport report;
  report.set("bench", std::string("svc_service"));
  report.set("distinct_jobs", kDistinctJobs);
  report.set("clients", kClients);
  report.set("requests_per_client", kRequestsPerClient);
  report.set("workers", service.workers());
  report.set("cold_latency_mean_s", cold_mean);
  report.set("cold_latency_max_s", cold.max_seconds());
  report.set("hot_latency_p50_s", hot_p50);
  report.set("hot_latency_p99_s", hot_p99);
  report.set("hit_over_cold_speedup", speedup);
  report.set("throughput_rps", throughput);
  report.set("cache_hit_ratio", hit_ratio);
  report.set("executed", service.metrics().executed.load());
  report.set("dedup_joined", service.metrics().dedup_joined.load());
  report.set("flood_accepted", flood_accepted);
  report.set("flood_rejected", flood_rejected);
  if (report.write(json_path))
    std::cout << "JSON report -> " << json_path << "\n";

  return hit_fast_enough && admission_sheds ? 0 : 1;
}
