// Service-layer benchmark: the simulated machine room behind
// svc::SimService. Measures (1) cold path — distinct jobs that must run
// the simulator, (2) hot path — a client swarm re-requesting the same
// jobs, answered by the single-flight LRU cache, (3) admission control
// at a deliberately tiny queue bound, (4) fault absorption — a seeded
// FaultyExecutor (throws, stragglers, hangs) behind a RetryPolicy, so
// the retry/timeout counters land in the report. Emits BENCH_svc.json
// (5) persistence — the same jobs run in two services sharing a
// --cache-dir-style store: the first pays cold simulation and persists,
// the second warm-loads the store and must re-run nothing. Emits
// BENCH_svc.json (--json <path>, default BENCH_svc.json in the cwd) with
// throughput, p50/p99 latency, the hit/cold speedup, the hit ratio, the
// retry/timeout/gave-up counters, and the cold-vs-warm-start numbers so
// future PRs can track service performance, fault handling, and
// restart-recovery behaviour.
#include <atomic>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/bench_util.hpp"
#include "svc/fault.hpp"
#include "svc/service.hpp"
#include "trace/stats.hpp"

namespace {

using namespace gpawfd;

core::SimJobSpec job_spec(int job_id) {
  core::SimJobSpec spec;
  spec.approach = sched::Approach::kHybridMultiple;
  spec.job.grid_shape = Vec3::cube(48);
  spec.job.ngrids = 32 + 4 * job_id;
  spec.opt = sched::Optimizations::all_on(4);
  spec.total_cores = 64;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gpawfd::bench;

  constexpr int kDistinctJobs = 8;
  constexpr int kClients = 16;
  constexpr int kRequestsPerClient = 256;

  banner("Simulation service: cache, single-flight, admission control",
         "service layer over the IPDPS'09 engine (this repo, src/svc)",
         "cache hits >= 10x faster than cold simulations; rejects, "
         "never blocks, past the queue bound");

  svc::ServiceConfig cfg;
  cfg.queue_capacity = 256;
  cfg.cache_capacity = 64;
  svc::SimService service(cfg);
  std::cout << "workers: " << service.workers() << ", queue capacity "
            << cfg.queue_capacity << ", cache capacity "
            << cfg.cache_capacity << "\n\n";

  // ---- phase 1: cold -------------------------------------------------
  trace::LatencyHistogram cold;
  for (int j = 0; j < kDistinctJobs; ++j) {
    const double t0 = trace::now_seconds();
    service.run(job_spec(j));
    cold.record(trace::now_seconds() - t0);
  }

  // ---- phase 2: hot client swarm --------------------------------------
  trace::LatencyHistogram hot;
  std::atomic<std::int64_t> completed{0};
  const double swarm_t0 = trace::now_seconds();
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const int job_id = (c + i) % kDistinctJobs;
        const double t0 = trace::now_seconds();
        svc::Ticket t = service.submit(job_spec(job_id));
        if (t.rejected()) continue;
        t.result.wait();
        hot.record(trace::now_seconds() - t0);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  const double swarm_seconds = trace::now_seconds() - swarm_t0;
  const double throughput =
      static_cast<double>(completed.load()) / swarm_seconds;

  // ---- phase 3: admission control at a tiny bound ---------------------
  svc::ServiceConfig tiny;
  tiny.workers = 1;
  tiny.queue_capacity = 2;
  tiny.cache_capacity = 4;
  std::int64_t flood_rejected = 0, flood_accepted = 0;
  {
    svc::SimService bounded(tiny);
    for (int i = 0; i < 32; ++i) {
      svc::Ticket t = bounded.submit(job_spec(i));  // 32 distinct cold jobs
      if (t.status == svc::SubmitStatus::kRejectedQueueFull)
        ++flood_rejected;
      else if (!t.rejected())
        ++flood_accepted;
    }
  }  // drain

  // ---- phase 4: fault absorption under a retry policy ------------------
  // Seeded, deterministic chaos: ~45% of keys fault (throw / straggle /
  // hang) on their first attempt, and the retry policy must recover
  // every one of them — gave_up == 0 is the pass criterion.
  svc::FaultConfig fault_cfg;
  fault_cfg.seed = 42;
  fault_cfg.throw_probability = 0.25;
  fault_cfg.delay_probability = 0.15;
  fault_cfg.hang_probability = 0.05;
  fault_cfg.fail_attempts = 1;  // every fault recovers on the first retry
  fault_cfg.delay_seconds = 0.030;
  fault_cfg.jitter_seconds = 0.010;
  auto faulty = std::make_shared<svc::FaultyExecutor>(
      [](const core::SimJobSpec& spec) {
        core::SimResult r;
        r.seconds = static_cast<double>(spec.job.ngrids);
        return r;
      },
      fault_cfg);

  svc::ServiceConfig chaos_cfg;
  chaos_cfg.workers = 4;
  chaos_cfg.queue_capacity = 256;
  chaos_cfg.executor = [faulty](const core::SimJobSpec& s) {
    return (*faulty)(s);
  };
  chaos_cfg.retry.max_attempts = 3;
  chaos_cfg.retry.initial_backoff_seconds = 0.0005;
  chaos_cfg.retry.max_backoff_seconds = 0.004;
  chaos_cfg.retry.attempt_timeout_seconds = 0.010;  // bounds every hang

  constexpr int kChaosJobs = 64;
  std::int64_t chaos_completed = 0, chaos_failed = 0;
  std::int64_t retries, timeouts, gave_up;
  double attempt_p50, attempt_p99;
  const double chaos_t0 = trace::now_seconds();
  double chaos_seconds;
  {
    svc::SimService chaos(chaos_cfg);
    std::vector<svc::Ticket> tickets;
    for (int j = 0; j < kChaosJobs; ++j)
      tickets.push_back(chaos.submit(job_spec(100 + j)));
    for (auto& t : tickets) {
      if (t.rejected()) continue;
      try {
        t.result.get();
        ++chaos_completed;
      } catch (const svc::ServiceError&) {
        ++chaos_failed;
      }
    }
    chaos_seconds = trace::now_seconds() - chaos_t0;
    const auto& cm = chaos.metrics();
    retries = cm.retries.load();
    timeouts = cm.timeouts.load();
    gave_up = cm.gave_up.load();
    attempt_p50 = cm.attempt_time.quantile(0.50);
    attempt_p99 = cm.attempt_time.quantile(0.99);
  }

  // ---- phase 5: cold start vs warm start (persistent store) -----------
  // Two services share one store directory, sequentially — the same
  // restart a SIGKILLed server would make, minus the SIGKILL (the
  // torture suite covers torn logs; this measures the payoff).
  const std::filesystem::path store_dir =
      std::filesystem::temp_directory_path() /
      ("gpawfd_bench_cache_" + std::to_string(::getpid()));
  std::filesystem::remove_all(store_dir);
  constexpr int kWarmJobs = 8;
  std::int64_t persisted = 0, warm_loaded = 0, warm_executed = 0;
  double cold_start_seconds, warm_start_seconds;
  {
    svc::ServiceConfig pc;
    pc.cache_dir = store_dir.string();
    svc::SimService first(pc);
    const double t0 = trace::now_seconds();
    for (int j = 0; j < kWarmJobs; ++j) first.run(job_spec(j));
    cold_start_seconds = trace::now_seconds() - t0;
    first.shutdown();  // drains the persister: everything on disk
    persisted = first.persister()->written();
  }
  {
    svc::ServiceConfig pc;
    pc.cache_dir = store_dir.string();
    svc::SimService second(pc);
    warm_loaded = second.metrics().warm_loaded.load();
    const double t0 = trace::now_seconds();
    for (int j = 0; j < kWarmJobs; ++j) second.run(job_spec(j));
    warm_start_seconds = trace::now_seconds() - t0;
    warm_executed = second.metrics().executed.load();
  }
  std::filesystem::remove_all(store_dir);
  const double warm_speedup =
      warm_start_seconds > 0 ? cold_start_seconds / warm_start_seconds : 0;

  // ---- report ---------------------------------------------------------
  const double cold_mean = cold.mean_seconds();
  const double hot_p50 = hot.quantile(0.50);
  const double hot_p99 = hot.quantile(0.99);
  const double speedup = hot_p50 > 0 ? cold_mean / hot_p50 : 0;
  const double hit_ratio = service.metrics().hit_ratio();

  Table t({"metric", "value"});
  t.add_row({"cold latency (mean)", fmt_seconds(cold_mean)});
  t.add_row({"cold latency (max)", fmt_seconds(cold.max_seconds())});
  t.add_row({"hot latency (p50)", fmt_seconds(hot_p50)});
  t.add_row({"hot latency (p99)", fmt_seconds(hot_p99)});
  t.add_row({"hit/cold speedup", fmt_fixed(speedup, 0) + "x"});
  t.add_row({"swarm throughput", fmt_fixed(throughput, 0) + " req/s"});
  t.add_row({"cache hit ratio", fmt_fixed(100 * hit_ratio, 1) + "%"});
  t.add_row({"flood: accepted", std::to_string(flood_accepted)});
  t.add_row({"flood: rejected", std::to_string(flood_rejected)});
  t.add_row({"chaos: completed", std::to_string(chaos_completed)});
  t.add_row({"chaos: failed", std::to_string(chaos_failed)});
  t.add_row({"chaos: retries", std::to_string(retries)});
  t.add_row({"chaos: timeouts", std::to_string(timeouts)});
  t.add_row({"chaos: gave up", std::to_string(gave_up)});
  t.add_row({"chaos: attempt p50", fmt_seconds(attempt_p50)});
  t.add_row({"chaos: attempt p99", fmt_seconds(attempt_p99)});
  t.add_row({"persist: results stored", std::to_string(persisted)});
  t.add_row({"persist: warm-loaded", std::to_string(warm_loaded)});
  t.add_row({"persist: cold start", fmt_seconds(cold_start_seconds)});
  t.add_row({"persist: warm start", fmt_seconds(warm_start_seconds)});
  t.add_row({"persist: warm speedup", fmt_fixed(warm_speedup, 0) + "x"});
  t.print(std::cout);

  std::cout << "\nservice metrics snapshot:\n"
            << service.metrics_snapshot() << "\n";

  const bool hit_fast_enough = speedup >= 10.0;
  const bool admission_sheds = flood_rejected > 0;
  const bool faults_absorbed =
      gave_up == 0 && chaos_failed == 0 && retries > 0;
  std::cout << (hit_fast_enough ? "OK" : "FAIL")
            << ": cache hits are " << fmt_fixed(speedup, 0)
            << "x faster than cold runs (need >= 10x)\n"
            << (admission_sheds ? "OK" : "FAIL")
            << ": admission control rejected " << flood_rejected
            << " of 32 past-the-bound requests\n"
            << (faults_absorbed ? "OK" : "FAIL")
            << ": retry policy absorbed every injected fault (" << retries
            << " retries, " << timeouts << " timeouts, " << gave_up
            << " gave up) in " << fmt_seconds(chaos_seconds) << "\n";

  const bool warm_restart_free = warm_executed == 0 && warm_loaded > 0;
  std::cout << (warm_restart_free ? "OK" : "FAIL")
            << ": warm restart re-ran " << warm_executed << " of "
            << kWarmJobs << " simulations (warm-loaded " << warm_loaded
            << " from the store, " << fmt_fixed(warm_speedup, 0)
            << "x faster start)\n";

  std::string json_path = json_path_from_args(argc, argv);
  if (json_path.empty()) json_path = "BENCH_svc.json";
  JsonReport report;
  report.set("bench", std::string("svc_service"));
  report.set("distinct_jobs", kDistinctJobs);
  report.set("clients", kClients);
  report.set("requests_per_client", kRequestsPerClient);
  report.set("workers", service.workers());
  report.set("cold_latency_mean_s", cold_mean);
  report.set("cold_latency_max_s", cold.max_seconds());
  report.set("hot_latency_p50_s", hot_p50);
  report.set("hot_latency_p99_s", hot_p99);
  report.set("hit_over_cold_speedup", speedup);
  report.set("throughput_rps", throughput);
  report.set("cache_hit_ratio", hit_ratio);
  report.set("executed", service.metrics().executed.load());
  report.set("dedup_joined", service.metrics().dedup_joined.load());
  report.set("flood_accepted", flood_accepted);
  report.set("flood_rejected", flood_rejected);
  report.set("chaos_jobs", kChaosJobs);
  report.set("chaos_completed", chaos_completed);
  report.set("chaos_failed", chaos_failed);
  report.set("retries", retries);
  report.set("timeouts", timeouts);
  report.set("gave_up", gave_up);
  report.set("injected_throws", faulty->injected_throws());
  report.set("injected_delays", faulty->injected_delays());
  report.set("injected_hangs", faulty->injected_hangs());
  report.set("attempt_p50_s", attempt_p50);
  report.set("attempt_p99_s", attempt_p99);
  report.set("chaos_seconds", chaos_seconds);
  report.set("warm_jobs", kWarmJobs);
  report.set("persisted", persisted);
  report.set("warm_loaded", warm_loaded);
  report.set("warm_executed", warm_executed);
  report.set("cold_start_s", cold_start_seconds);
  report.set("warm_start_s", warm_start_seconds);
  report.set("warm_over_cold_speedup", warm_speedup);
  if (report.write(json_path))
    std::cout << "JSON report -> " << json_path << "\n";

  return hit_fast_enough && admission_sheds && faults_absorbed &&
                 warm_restart_free
             ? 0
             : 1;
}
