// Figure 2 + Table I: point-to-point bandwidth between two neighbouring
// Blue Gene/P nodes as a function of message size.
//
// Paper: half of the asymptotic bandwidth at ~10^3 bytes; full bandwidth
// (~370-390 MB/s out of the raw 425 MB/s link) needs >= 10^5 bytes.
#include <cmath>
#include <iostream>

#include "bench/bench_util.hpp"
#include "bgsim/fabric.hpp"
#include "bgsim/torus.hpp"

namespace gpawfd {
namespace {

void print_table1(const bgsim::MachineConfig& m) {
  Table t({"Table I", "value"});
  t.add_row({"Node CPU", "Four PowerPC 450 cores"});
  t.add_row({"CPU frequency", fmt_fixed(m.cpu_hz / 1e6, 0) + " MHz"});
  t.add_row({"Main memory", fmt_bytes(static_cast<double>(m.main_memory_bytes))});
  t.add_row({"Main memory bandwidth", fmt_fixed(m.mem_bandwidth / 1e9, 1) + " GB/s"});
  t.add_row({"Peak performance", fmt_fixed(m.peak_flops_per_node / 1e9, 1) + " Gflops/node"});
  t.add_row({"Torus bandwidth",
             "6 x 2 x " + fmt_fixed(m.link_bandwidth / 1e6, 0) +
                 " MB/s = " + fmt_fixed(12 * m.link_bandwidth / 1e9, 1) + " GB/s"});
  t.print(std::cout);
}

/// One round of the paper's experiment: a single message between two
/// neighbouring nodes; bandwidth = size / transfer time.
double measure_bandwidth(const bgsim::MachineConfig& m, std::int64_t bytes) {
  bgsim::EventLoop loop;
  bgsim::TorusNetwork net(loop, m, {8, 8, 8});
  const bgsim::SimTime done =
      net.submit(net.node_at({0, 0, 0}), net.node_at({1, 0, 0}), bytes);
  return static_cast<double>(bytes) / bgsim::to_seconds(done);
}

}  // namespace
}  // namespace gpawfd

int main(int argc, char** argv) {
  using namespace gpawfd;
  const auto m = bgsim::MachineConfig::bluegene_p();

  bench::banner(
      "Figure 2: message size vs point-to-point bandwidth",
      "Kristensen et al., IPDPS'09, Fig. 2 and Table I",
      "half bandwidth at ~1e3 B; asymptote ~370-390 MB/s above 1e5 B");
  print_table1(m);
  std::cout << '\n';

  bench::JsonReport rep;
  rep.mirror_to(bench::sink_from_args(argc, argv), "bench.fig2_bandwidth");
  rep.set("bench", std::string("fig2_bandwidth"));
  Table t({"message size [B]", "bandwidth [MB/s]", "fraction of peak"});
  const double peak = m.effective_link_bandwidth();
  rep.set("peak_link_bandwidth_mbs", peak / 1e6);
  double half_point = -1, knee_bw = -1;
  for (int exp = 0; exp <= 7; ++exp) {
    for (std::int64_t mul : {1, 2, 5}) {
      const std::int64_t size =
          mul * static_cast<std::int64_t>(std::pow(10.0, exp));
      if (size > 10'000'000) break;
      const double bw = measure_bandwidth(m, size);
      t.add_row({std::to_string(size), fmt_fixed(bw / 1e6, 1),
                 fmt_fixed(bw / peak, 3)});
      rep.set("bandwidth_mbs_" + std::to_string(size), bw / 1e6);
      if (half_point < 0 && bw >= 0.5 * peak) half_point = static_cast<double>(size);
      if (size == 100'000) knee_bw = bw;
    }
  }
  t.print(std::cout);
  rep.set("half_bandwidth_message_bytes", half_point);
  rep.set("bandwidth_at_1e5_mbs", knee_bw / 1e6);

  std::cout << "\npaper-vs-measured:\n"
            << "  half-bandwidth message size: paper ~1e3 B, measured ~"
            << half_point << " B\n"
            << "  bandwidth at 1e5 B: paper ~370-390 MB/s, measured "
            << fmt_bandwidth(knee_bw) << "\n";

  std::string path = bench::json_path_from_args(argc, argv);
  if (path.empty()) path = "BENCH_fig2.json";
  if (rep.write(path)) std::cout << "JSON written to " << path << "\n";
  return 0;
}
