// Section VII experiment: modify Flat optimized to statically divide the
// real-space grids into four sub-groups, one per CPU-core of a node —
// each rank then partitions its grids only node-deep, exactly like
// Hybrid multiple. The paper found its performance *identical* to Hybrid
// multiple and concluded that the partition granularity is the sole
// reason for the Hybrid-multiple vs Flat-optimized gap.
//
// (The sub-group variant is not usable in a real GPAW run: GPAW requires
// every MPI process to own the same subset of every grid.)
#include <iostream>

#include "bench/bench_util.hpp"

int main() {
  using namespace gpawfd;
  using namespace gpawfd::bench;
  using sched::Approach;
  using sched::JobConfig;
  using sched::Optimizations;

  const auto m = bgsim::MachineConfig::bluegene_p();
  JobConfig job;
  job.grid_shape = Vec3::cube(192);
  job.ngrids = 2816;

  banner("Section VII ablation: flat optimized with static sub-groups",
         "Kristensen et al., IPDPS'09, section VII",
         "sub-group variant performance-identical to Hybrid multiple; "
         "both clearly faster than plain Flat optimized");

  std::cout << "GPAW-compatible (same-subset requirement): "
            << "Flat optimized: "
            << (sched::satisfies_same_subset_requirement(
                    Approach::kFlatOptimized)
                    ? "yes"
                    : "no")
            << ", sub-groups: "
            << (sched::satisfies_same_subset_requirement(
                    Approach::kFlatOptimizedSubgroups)
                    ? "yes"
                    : "no")
            << "\n\n";

  Table t({"cores", "Flat optimized [s]", "Flat opt + sub-groups [s]",
           "Hybrid multiple [s]", "subgroups/hybrid"});
  for (int cores : {2048, 8192, 16384}) {
    const int batch = core::best_batch_size(Approach::kHybridMultiple, job,
                                            Optimizations::all_on(1), cores,
                                            4, m);
    const auto flat = core::simulate_scaled(
        Approach::kFlatOptimized, job, Optimizations::all_on(batch), cores,
        4, m);
    const auto sub = core::simulate_scaled(
        Approach::kFlatOptimizedSubgroups, job, Optimizations::all_on(batch),
        cores, 4, m);
    const auto hyb = core::simulate_scaled(
        Approach::kHybridMultiple, job, Optimizations::all_on(batch), cores,
        4, m);
    t.add_row({std::to_string(cores), fmt_fixed(flat.seconds, 4),
               fmt_fixed(sub.seconds, 4), fmt_fixed(hyb.seconds, 4),
               fmt_fixed(sub.seconds / hyb.seconds, 3)});
  }
  t.print(std::cout);

  std::cout << "\npaper-vs-measured: the paper reports identical "
               "performance for the sub-group variant and Hybrid\n"
               "multiple (ratio 1.000); the measured ratio isolates the "
               "partition granularity as the cause of\nthe gap.\n";
  return 0;
}
