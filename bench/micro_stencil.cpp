// Kernel microbenchmarks. Default mode measures the scalar baseline vs
// the SIMD/tiled fast path (apply by radius and element type, fused vs
// unfused jacobi) with a best-of-reps manual harness and writes
// BENCH_micro_stencil.json. `--gbench [filters...]` instead runs the
// google-benchmark registrations below.
#include <benchmark/benchmark.h>

#include <chrono>
#include <complex>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/rng.hpp"
#include "grid/array3d.hpp"
#include "stencil/kernels.hpp"

namespace {

using gpawfd::Vec3;
using gpawfd::grid::Array3D;

template <typename T>
Array3D<T> random_grid(Vec3 n, int ghost) {
  Array3D<T> a(n, ghost);
  gpawfd::Rng rng(7);
  a.for_each_interior([&](Vec3, T& v) { v = static_cast<T>(rng.uniform(-1, 1)); });
  gpawfd::grid::local_periodic_fill(a);
  return a;
}

template <typename T>
void BM_StencilApply(benchmark::State& state) {
  const int radius = static_cast<int>(state.range(0));
  const auto n = Vec3::cube(state.range(1));
  Array3D<T> in = random_grid<T>(n, radius);
  Array3D<T> out(n, radius);
  const auto c = gpawfd::stencil::Coeffs::laplacian(radius);
  for (auto _ : state) {
    gpawfd::stencil::apply(in, out, c);
    benchmark::DoNotOptimize(out.interior());
  }
  state.SetItemsProcessed(state.iterations() * in.interior_points());
  state.counters["Mpts/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * in.interior_points()) / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK_TEMPLATE(BM_StencilApply, double)
    ->ArgsProduct({{1, 2, 3}, {32, 64, 96}})
    ->Unit(benchmark::kMicrosecond);

void BM_StencilApplyScalar(benchmark::State& state) {
  const int radius = static_cast<int>(state.range(0));
  const auto n = Vec3::cube(state.range(1));
  Array3D<double> in = random_grid<double>(n, radius);
  Array3D<double> out(n, radius);
  const auto c = gpawfd::stencil::Coeffs::laplacian(radius);
  for (auto _ : state) {
    gpawfd::stencil::apply_scalar(in, out, c);
    benchmark::DoNotOptimize(out.interior());
  }
  state.SetItemsProcessed(state.iterations() * in.interior_points());
}
BENCHMARK(BM_StencilApplyScalar)
    ->ArgsProduct({{1, 2}, {64, 96}})
    ->Unit(benchmark::kMicrosecond);

void BM_StencilApplyComplex(benchmark::State& state) {
  using C = std::complex<double>;
  const auto n = Vec3::cube(state.range(0));
  Array3D<C> in(n, 2), out(n, 2);
  gpawfd::Rng rng(9);
  in.for_each_interior(
      [&](Vec3, C& v) { v = C(rng.uniform(-1, 1), rng.uniform(-1, 1)); });
  gpawfd::grid::local_periodic_fill(in);
  const auto c = gpawfd::stencil::Coeffs::laplacian(2);
  for (auto _ : state) {
    gpawfd::stencil::apply(in, out, c);
    benchmark::DoNotOptimize(out.interior());
  }
  state.SetItemsProcessed(state.iterations() * in.interior_points());
}
BENCHMARK(BM_StencilApplyComplex)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_ReferenceKernel(benchmark::State& state) {
  const auto n = Vec3::cube(state.range(0));
  Array3D<double> in = random_grid<double>(n, 2);
  Array3D<double> out(n, 2);
  const auto c = gpawfd::stencil::Coeffs::laplacian(2);
  for (auto _ : state) {
    gpawfd::stencil::apply_reference(in, out, c);
    benchmark::DoNotOptimize(out.interior());
  }
  state.SetItemsProcessed(state.iterations() * in.interior_points());
}
BENCHMARK(BM_ReferenceKernel)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_FacePack(benchmark::State& state) {
  const auto n = Vec3::cube(state.range(0));
  Array3D<double> a = random_grid<double>(n, 2);
  const int dim = static_cast<int>(state.range(1));
  std::vector<double> buf(
      static_cast<std::size_t>(gpawfd::grid::face_points(a, dim)));
  for (auto _ : state) {
    gpawfd::grid::pack_face(a, gpawfd::grid::Face{dim, 0},
                            std::span<double>(buf.data(), buf.size()));
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(buf.size()) * 8);
}
BENCHMARK(BM_FacePack)->ArgsProduct({{64, 144}, {0, 1, 2}});

void BM_LocalPeriodicFill(benchmark::State& state) {
  const auto n = Vec3::cube(state.range(0));
  Array3D<double> a = random_grid<double>(n, 2);
  for (auto _ : state) {
    gpawfd::grid::local_periodic_fill(a);
    benchmark::DoNotOptimize(a.raw().data());
  }
}
BENCHMARK(BM_LocalPeriodicFill)->Arg(64)->Arg(144)->Unit(benchmark::kMicrosecond);

void BM_JacobiStep(benchmark::State& state) {
  const auto n = Vec3::cube(state.range(0));
  Array3D<double> u = random_grid<double>(n, 2);
  Array3D<double> b = random_grid<double>(n, 2);
  Array3D<double> out(n, 2);
  const auto c = gpawfd::stencil::Coeffs::laplacian(2);
  for (auto _ : state) {
    gpawfd::stencil::jacobi_step(u, b, out, c, 0.7);
    benchmark::DoNotOptimize(out.interior());
  }
  state.SetItemsProcessed(state.iterations() * u.interior_points());
}
BENCHMARK(BM_JacobiStep)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------
// Manual harness (default mode): best-of-reps timing so the JSON numbers
// are stable enough for PR-over-PR diffing.

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best per-call seconds over `reps` repetitions, with the inner
/// iteration count sized so each repetition runs >= ~20 ms.
template <typename F>
double best_seconds(F&& fn, int reps = 5) {
  fn();  // warm-up (faults pages, primes caches)
  double t0 = now_s();
  fn();
  double once = std::max(now_s() - t0, 1e-9);
  const int iters = std::max(1, static_cast<int>(0.02 / once));
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double start = now_s();
    for (int i = 0; i < iters; ++i) fn();
    best = std::min(best, (now_s() - start) / iters);
  }
  return best;
}

struct Pair {
  double scalar_mpts;
  double simd_mpts;
  double speedup() const { return simd_mpts / scalar_mpts; }
};

template <typename T>
Pair measure_apply(int radius, std::int64_t edge) {
  const auto n = Vec3::cube(edge);
  Array3D<T> in = random_grid<T>(n, radius);
  Array3D<T> out(n, radius);
  const auto c = gpawfd::stencil::Coeffs::laplacian(radius);
  const double pts = static_cast<double>(in.interior_points());
  const double ts =
      best_seconds([&] { gpawfd::stencil::apply_scalar(in, out, c); });
  const double tv = best_seconds([&] { gpawfd::stencil::apply(in, out, c); });
  return {pts / ts / 1e6, pts / tv / 1e6};
}

Pair measure_jacobi(std::int64_t edge) {
  // Fusion pays in memory traffic, so measure it in the regime the real
  // workload runs in: many grids relaxed round-robin (GPAW cycles
  // thousands of wave functions), each cold in cache when its turn comes.
  // The ring is sized to overflow even a large last-level cache.
  const auto n = Vec3::cube(edge);
  const auto c = gpawfd::stencil::Coeffs::laplacian(2);
  constexpr std::size_t kRing = 32;
  std::vector<Array3D<double>> u, b, out;
  for (std::size_t i = 0; i < kRing; ++i) {
    u.push_back(random_grid<double>(n, 2));
    b.push_back(random_grid<double>(n, 2));
    out.emplace_back(n, 2);
  }
  const double pts =
      static_cast<double>(kRing) * static_cast<double>(u[0].interior_points());
  const double tu = best_seconds(
      [&] {
        for (std::size_t i = 0; i < kRing; ++i)
          gpawfd::stencil::jacobi_step_unfused(u[i], b[i], out[i], c, 0.7);
      },
      3);
  const double tf = best_seconds(
      [&] {
        for (std::size_t i = 0; i < kRing; ++i)
          gpawfd::stencil::jacobi_step(u[i], b[i], out[i], c, 0.7);
      },
      3);
  return {pts / tu / 1e6, pts / tf / 1e6};
}

int run_manual(const std::string& json_path,
               std::shared_ptr<gpawfd::telemetry::TelemetrySink> telemetry) {
  using gpawfd::Table;
  using gpawfd::fmt_fixed;
  constexpr std::int64_t kEdge = 96;

  gpawfd::bench::banner(
      "Kernel fast path: scalar baseline vs SIMD/tiled kernels",
      "Kristensen et al., IPDPS'09, section V (kernel optimization)",
      "radius-2 double apply >= 1.5x; fused jacobi >= 1.3x over unfused");
  std::cout << "SIMD ISA: " << gpawfd::stencil::kernel_isa()
            << " (lane width " << gpawfd::simd::kWidth << " doubles), grid "
            << kEdge << "^3\n\n";

  const Pair r1 = measure_apply<double>(1, kEdge);
  const Pair r2 = measure_apply<double>(2, kEdge);
  const Pair c2 = measure_apply<std::complex<double>>(2, kEdge);
  const Pair jac = measure_jacobi(kEdge);
  // Minimum streaming traffic of one apply: read u once, write out once.
  const double r2_gbs = r2.simd_mpts * 1e6 * 2 * sizeof(double) / 1e9;

  Table t({"kernel", "scalar [Mpts/s]", "fast [Mpts/s]", "speedup"});
  t.add_row({"apply r=1 double", fmt_fixed(r1.scalar_mpts, 1),
             fmt_fixed(r1.simd_mpts, 1), fmt_fixed(r1.speedup(), 2) + "x"});
  t.add_row({"apply r=2 double", fmt_fixed(r2.scalar_mpts, 1),
             fmt_fixed(r2.simd_mpts, 1), fmt_fixed(r2.speedup(), 2) + "x"});
  t.add_row({"apply r=2 complex", fmt_fixed(c2.scalar_mpts, 1),
             fmt_fixed(c2.simd_mpts, 1), fmt_fixed(c2.speedup(), 2) + "x"});
  t.add_row({"jacobi r=2 fused vs unfused", fmt_fixed(jac.scalar_mpts, 1),
             fmt_fixed(jac.simd_mpts, 1), fmt_fixed(jac.speedup(), 2) + "x"});
  t.print(std::cout);
  std::cout << "\napply r=2 fast-path streaming traffic: "
            << fmt_fixed(r2_gbs, 2) << " GB/s (1 read + 1 write per point)\n";

  gpawfd::bench::JsonReport rep;
  rep.mirror_to(telemetry, "bench.micro_stencil");
  rep.set("bench", std::string("micro_stencil"));
  rep.set("isa", std::string(gpawfd::stencil::kernel_isa()));
  rep.set("simd_width_doubles", gpawfd::simd::kWidth);
  rep.set("grid_edge", kEdge);
  rep.set("apply_r1_scalar_mpts", r1.scalar_mpts);
  rep.set("apply_r1_simd_mpts", r1.simd_mpts);
  rep.set("apply_r1_speedup", r1.speedup());
  rep.set("apply_r2_scalar_mpts", r2.scalar_mpts);
  rep.set("apply_r2_simd_mpts", r2.simd_mpts);
  rep.set("apply_r2_speedup", r2.speedup());
  rep.set("apply_r2_simd_gbs", r2_gbs);
  rep.set("apply_r2_complex_scalar_mpts", c2.scalar_mpts);
  rep.set("apply_r2_complex_simd_mpts", c2.simd_mpts);
  rep.set("apply_r2_complex_speedup", c2.speedup());
  rep.set("jacobi_r2_unfused_mpts", jac.scalar_mpts);
  rep.set("jacobi_r2_fused_mpts", jac.simd_mpts);
  rep.set("jacobi_fused_speedup", jac.speedup());
  rep.write(json_path);
  std::cout << "JSON written to " << json_path << "\n";
  if (telemetry) telemetry->flush();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool gbench = false;
  for (auto it = args.begin(); it != args.end();) {
    if (std::strcmp(*it, "--gbench") == 0) {
      gbench = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  if (gbench) {
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  std::string path = gpawfd::bench::json_path_from_args(argc, argv);
  if (path.empty()) path = "BENCH_micro_stencil.json";
  return run_manual(path, gpawfd::bench::sink_from_args(argc, argv));
}
