// Kernel microbenchmarks (google-benchmark): stencil throughput by
// radius and element type, face codec throughput, local periodic fill.
#include <benchmark/benchmark.h>

#include <complex>

#include "common/rng.hpp"
#include "grid/array3d.hpp"
#include "stencil/kernels.hpp"

namespace {

using gpawfd::Vec3;
using gpawfd::grid::Array3D;

template <typename T>
Array3D<T> random_grid(Vec3 n, int ghost) {
  Array3D<T> a(n, ghost);
  gpawfd::Rng rng(7);
  a.for_each_interior([&](Vec3, T& v) { v = static_cast<T>(rng.uniform(-1, 1)); });
  gpawfd::grid::local_periodic_fill(a);
  return a;
}

template <typename T>
void BM_StencilApply(benchmark::State& state) {
  const int radius = static_cast<int>(state.range(0));
  const auto n = Vec3::cube(state.range(1));
  Array3D<T> in = random_grid<T>(n, radius);
  Array3D<T> out(n, radius);
  const auto c = gpawfd::stencil::Coeffs::laplacian(radius);
  for (auto _ : state) {
    gpawfd::stencil::apply(in, out, c);
    benchmark::DoNotOptimize(out.interior());
  }
  state.SetItemsProcessed(state.iterations() * in.interior_points());
  state.counters["Mpts/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * in.interior_points()) / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK_TEMPLATE(BM_StencilApply, double)
    ->ArgsProduct({{1, 2, 3}, {32, 64, 96}})
    ->Unit(benchmark::kMicrosecond);

void BM_StencilApplyComplex(benchmark::State& state) {
  using C = std::complex<double>;
  const auto n = Vec3::cube(state.range(0));
  Array3D<C> in(n, 2), out(n, 2);
  gpawfd::Rng rng(9);
  in.for_each_interior(
      [&](Vec3, C& v) { v = C(rng.uniform(-1, 1), rng.uniform(-1, 1)); });
  gpawfd::grid::local_periodic_fill(in);
  const auto c = gpawfd::stencil::Coeffs::laplacian(2);
  for (auto _ : state) {
    gpawfd::stencil::apply(in, out, c);
    benchmark::DoNotOptimize(out.interior());
  }
  state.SetItemsProcessed(state.iterations() * in.interior_points());
}
BENCHMARK(BM_StencilApplyComplex)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_ReferenceKernel(benchmark::State& state) {
  const auto n = Vec3::cube(state.range(0));
  Array3D<double> in = random_grid<double>(n, 2);
  Array3D<double> out(n, 2);
  const auto c = gpawfd::stencil::Coeffs::laplacian(2);
  for (auto _ : state) {
    gpawfd::stencil::apply_reference(in, out, c);
    benchmark::DoNotOptimize(out.interior());
  }
  state.SetItemsProcessed(state.iterations() * in.interior_points());
}
BENCHMARK(BM_ReferenceKernel)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_FacePack(benchmark::State& state) {
  const auto n = Vec3::cube(state.range(0));
  Array3D<double> a = random_grid<double>(n, 2);
  const int dim = static_cast<int>(state.range(1));
  std::vector<double> buf(
      static_cast<std::size_t>(gpawfd::grid::face_points(a, dim)));
  for (auto _ : state) {
    gpawfd::grid::pack_face(a, gpawfd::grid::Face{dim, 0},
                            std::span<double>(buf.data(), buf.size()));
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(buf.size()) * 8);
}
BENCHMARK(BM_FacePack)->ArgsProduct({{64, 144}, {0, 1, 2}});

void BM_LocalPeriodicFill(benchmark::State& state) {
  const auto n = Vec3::cube(state.range(0));
  Array3D<double> a = random_grid<double>(n, 2);
  for (auto _ : state) {
    gpawfd::grid::local_periodic_fill(a);
    benchmark::DoNotOptimize(a.raw().data());
  }
}
BENCHMARK(BM_LocalPeriodicFill)->Arg(64)->Arg(144)->Unit(benchmark::kMicrosecond);

void BM_JacobiStep(benchmark::State& state) {
  const auto n = Vec3::cube(state.range(0));
  Array3D<double> u = random_grid<double>(n, 2);
  Array3D<double> b = random_grid<double>(n, 2);
  Array3D<double> out(n, 2);
  const auto c = gpawfd::stencil::Coeffs::laplacian(2);
  for (auto _ : state) {
    gpawfd::stencil::jacobi_step(u, b, out, c, 0.7);
    benchmark::DoNotOptimize(out.interior());
  }
  state.SetItemsProcessed(state.iterations() * u.interior_points());
}
BENCHMARK(BM_JacobiStep)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
