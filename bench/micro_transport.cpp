// Transport microbenchmarks (google-benchmark): in-process message
// latency/bandwidth, non-blocking all-direction exchange, collectives,
// and the simulator's event loop throughput.
#include <benchmark/benchmark.h>

#include "bgsim/event_loop.hpp"
#include "bgsim/fabric.hpp"
#include "bgsim/torus.hpp"
#include "mp/thread_comm.hpp"

namespace {

using namespace gpawfd;

void BM_PingPong(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  mp::ThreadWorld world(2);
  for (auto _ : state) {
    world.run([&](mp::ThreadComm& c) {
      std::vector<std::byte> buf(bytes);
      constexpr int kRounds = 64;
      for (int i = 0; i < kRounds; ++i) {
        if (c.rank() == 0) {
          c.send(buf, 1, i);
          c.recv(buf, 1, 1000 + i);
        } else {
          c.recv(buf, 0, i);
          c.send(buf, 0, 1000 + i);
        }
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * 128 *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PingPong)->Arg(64)->Arg(4096)->Arg(1 << 16)->Unit(benchmark::kMillisecond);

void BM_AllDirectionExchange(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  mp::ThreadWorld world(ranks);
  for (auto _ : state) {
    world.run([&](mp::ThreadComm& c) {
      std::vector<std::byte> out(1024), in(1024);
      for (int round = 0; round < 8; ++round) {
        std::vector<mp::Request> reqs;
        for (int p = 0; p < c.size(); ++p) {
          if (p == c.rank()) continue;
          reqs.push_back(c.irecv(in, p, round));
        }
        for (int p = 0; p < c.size(); ++p) {
          if (p == c.rank()) continue;
          reqs.push_back(c.isend(out, p, round));
        }
        c.wait_all(reqs);
      }
    });
  }
}
BENCHMARK(BM_AllDirectionExchange)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_Allreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  mp::ThreadWorld world(ranks);
  for (auto _ : state) {
    world.run([&](mp::ThreadComm& c) {
      std::vector<double> in(64, 1.0), out(64);
      for (int i = 0; i < 16; ++i) c.allreduce_sum(in, out);
    });
  }
}
BENCHMARK(BM_Allreduce)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_SimEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    bgsim::EventLoop loop;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i)
      loop.schedule_at(i, [] {});
    loop.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimEventLoop)->Arg(1 << 14)->Unit(benchmark::kMillisecond);

void BM_SimTorusTransfers(benchmark::State& state) {
  for (auto _ : state) {
    bgsim::EventLoop loop;
    bgsim::TorusNetwork net(loop, bgsim::MachineConfig::bluegene_p(),
                            {8, 8, 8});
    for (int i = 0; i < 4096; ++i)
      net.submit(i % 512, (i * 37) % 512, 4096);
    benchmark::DoNotOptimize(net.total_link_bytes());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_SimTorusTransfers)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
