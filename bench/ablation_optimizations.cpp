// Design-choice ablation (DESIGN.md section 5): the contribution of each
// section V optimization, applied cumulatively to the flat approach, plus
// the topology-mapping and MPI-thread-mode toggles.
//
// Job: 512 grids of 192^3 on 4096 cores (a mid-scale slice of Fig. 6).
#include <iostream>

#include "bench/bench_util.hpp"

int main() {
  using namespace gpawfd;
  using namespace gpawfd::bench;
  using sched::Approach;
  using sched::JobConfig;
  using sched::Optimizations;

  const auto m = bgsim::MachineConfig::bluegene_p();
  JobConfig job;
  job.grid_shape = Vec3::cube(192);
  job.ngrids = 512;
  const int cores = 4096;

  banner("Ablation: cumulative contribution of each optimization",
         "Kristensen et al., IPDPS'09, section V",
         "each step improves on the previous: serialized -> non-blocking "
         "tri-dim -> +batching -> +double buffering -> +ramp-up");

  struct Step {
    const char* name;
    Optimizations opt;
  };
  Optimizations serialized = Optimizations::original();
  Optimizations nonblocking = serialized;
  nonblocking.nonblocking_tridim = true;
  Optimizations batched = nonblocking;
  batched.batch_size = 16;
  Optimizations buffered = batched;
  buffered.double_buffering = true;
  Optimizations ramped = buffered;
  ramped.ramp_up = true;

  const Step steps[] = {
      {"serialized blocking exchange (original)", serialized},
      {"+ non-blocking tri-dimensional exchange", nonblocking},
      {"+ batching (16 grids per message)", batched},
      {"+ double buffering", buffered},
      {"+ ramp-up batch", ramped},
  };

  Table t({"configuration", "time [s]", "vs previous", "vs original"});
  double prev = 0, base = 0;
  for (const Step& s : steps) {
    const auto r = core::simulate_scaled(Approach::kFlatOptimized, job,
                                         s.opt, cores, 4, m);
    if (base == 0) base = r.seconds;
    t.add_row({s.name, fmt_fixed(r.seconds, 4),
               prev == 0 ? "-" : fmt_fixed(prev / r.seconds, 3) + "x",
               fmt_fixed(base / r.seconds, 3) + "x"});
    prev = r.seconds;
  }
  t.print(std::cout);

  // Topology mapping: with vs without the torus-aware cart reorder.
  std::cout << "\nTopology mapping (MPI_Cart_create reorder):\n";
  Table t2({"placement", "Flat optimized [s]", "Hybrid multiple [s]"});
  for (bool mapping : {true, false}) {
    Optimizations o = ramped;
    o.topology_mapping = mapping;
    const auto f = core::simulate_scaled(Approach::kFlatOptimized, job, o,
                                         cores, 4, m);
    const auto h = core::simulate_scaled(Approach::kHybridMultiple, job, o,
                                         cores, 4, m);
    t2.add_row({mapping ? "torus-mapped" : "shuffled (no reorder)",
                fmt_fixed(f.seconds, 4), fmt_fixed(h.seconds, 4)});
  }
  t2.print(std::cout);

  // Batch-size sweep: locating the Fig. 2 knee in application terms.
  std::cout << "\nBatch-size sweep (hybrid multiple, " << cores
            << " cores):\n";
  Table t3({"batch size", "time [s]", "bytes per message (x face)"});
  const auto plan_probe = sched::RunPlan::make(
      Approach::kHybridMultiple, job, Optimizations::all_on(1), cores, 4);
  const std::int64_t face =
      plan_probe.face_bytes_per_grid(plan_probe.coords_of_rank(0), 0);
  for (int b : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const auto r = core::simulate_scaled(Approach::kHybridMultiple, job,
                                         Optimizations::all_on(b), cores, 4,
                                         m);
    t3.add_row({std::to_string(b), fmt_fixed(r.seconds, 4),
                fmt_bytes(static_cast<double>(face * b))});
  }
  t3.print(std::cout);
  std::cout << "\n(the sweep bottoms out once messages pass the Fig. 2 "
               "bandwidth knee of ~1e3..1e5 bytes)\n";
  return 0;
}
