// Figure 5: classic speedup graph of the finite-difference operation.
// Job: 32 real-space grids of 144^3 (the largest job that fits one
// CPU-core's memory). Left graph: batching disabled; right graph:
// batch size 8 (the maximum that still uses all four cores: 32/4 = 8).
//
// Expected shape: Flat optimized and Hybrid multiple scale best and are
// nearly tied (the job is too small for the hybrid comm advantage to
// show); batching widens the gap to the others and helps Hybrid multiple
// more than Flat optimized; Flat original trails everything.
#include <iostream>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace gpawfd;
  using namespace gpawfd::bench;
  using sched::JobConfig;

  const auto m = bgsim::MachineConfig::bluegene_p();
  JobConfig job;
  job.grid_shape = Vec3::cube(144);
  job.ngrids = 32;

  banner("Figure 5: speedup, 32 grids of 144^3, 1..4096 cores",
         "Kristensen et al., IPDPS'09, Fig. 5 (left: no batching, right: "
         "batch 8)",
         "Flat optimized ~ Hybrid multiple > Hybrid master-only > Flat "
         "original; batching helps, more so for Hybrid multiple");

  const double t_seq = core::simulate_sequential_seconds(job, m);
  std::cout << "sequential baseline (1 core): " << fmt_seconds(t_seq)
            << "\n\n";

  JsonReport rep;
  rep.mirror_to(sink_from_args(argc, argv), "bench.fig5_speedup");
  rep.set("bench", std::string("fig5_speedup"));
  rep.set("sequential_seconds", t_seq);

  const int cores_list[] = {1, 16, 64, 256, 512, 1024, 2048, 4096};
  for (int batch : {1, 8}) {
    std::cout << (batch == 1 ? "[left graph]  batching disabled\n"
                             : "[right graph] batch size 8\n");
    Table t({"cores", "Flat original", "Flat optimized", "Hybrid multiple",
             "Hybrid master-only"});
    for (int cores : cores_list) {
      std::vector<std::string> row{std::to_string(cores)};
      for (const ApproachSpec& spec : kApproaches) {
        const auto r = core::simulate_scaled(
            spec.approach, job, opts_for(spec, batch), cores, 4, m);
        row.push_back(fmt_fixed(t_seq / r.seconds, 1));
        rep.set("speedup_" + std::string(spec.slug) + "_batch" +
                    std::to_string(batch) + "_cores" + std::to_string(cores),
                t_seq / r.seconds);
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "paper-vs-measured: the paper reaches ~2200x at 4096 cores "
               "for the best approaches with batch 8,\nwith Flat optimized "
               "and Hybrid multiple indistinguishable at this small grid "
               "count.\n";

  std::string path = json_path_from_args(argc, argv);
  if (path.empty()) path = "BENCH_fig5.json";
  if (rep.write(path)) std::cout << "JSON written to " << path << "\n";
  return 0;
}
