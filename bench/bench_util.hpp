// Shared helpers for the figure-reproduction benchmark binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/table.hpp"
#include "core/figures.hpp"
#include "telemetry/sink.hpp"

namespace gpawfd::bench {

inline void banner(const std::string& title, const std::string& paper_ref,
                   const std::string& expectation) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "Paper reference: " << paper_ref << "\n"
            << "Expected shape:  " << expectation << "\n"
            << "==============================================================\n";
}

/// The four approaches of section VI in presentation order.
struct ApproachSpec {
  const char* name;
  const char* slug;  // key-safe name for JSON reports
  sched::Approach approach;
  bool uses_optimizations;  // false: always Optimizations::original()
};

inline constexpr ApproachSpec kApproaches[] = {
    {"Flat original", "flat_original", sched::Approach::kFlatOriginal, false},
    {"Flat optimized", "flat_optimized", sched::Approach::kFlatOptimized,
     true},
    {"Hybrid multiple", "hybrid_multiple", sched::Approach::kHybridMultiple,
     true},
    {"Hybrid master-only", "hybrid_master_only",
     sched::Approach::kHybridMasterOnly, true},
};

inline sched::Optimizations opts_for(const ApproachSpec& spec, int batch) {
  return spec.uses_optimizations ? sched::Optimizations::all_on(batch)
                                 : sched::Optimizations::original();
}

/// Flat JSON object writer for machine-readable bench artifacts
/// (BENCH_*.json), so successive PRs can diff throughput/latency series
/// without scraping the human tables. Keys keep insertion order.
class JsonReport {
 public:
  void set(const std::string& key, double value) {
    std::ostringstream os;
    os.precision(12);
    os << value;
    entries_.emplace_back(key, os.str());
    mirror(key, value);
  }
  void set(const std::string& key, std::int64_t value) {
    entries_.emplace_back(key, std::to_string(value));
    mirror(key, static_cast<double>(value));
  }
  void set(const std::string& key, int value) {
    set(key, static_cast<std::int64_t>(value));
  }
  void set(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, '"' + escaped(value) + '"');
    // Strings carry no trajectory value; not mirrored.
  }

  /// Mirror every numeric key set() from here on into `sink` as rows
  /// with the given `source` — one table accumulates the series that
  /// each BENCH_*.json only holds one point of. Null sink is a no-op.
  void mirror_to(std::shared_ptr<telemetry::TelemetrySink> sink,
                 std::string source) {
    sink_ = std::move(sink);
    source_ = std::move(source);
  }

  void render(std::ostream& os) const {
    os << "{\n";
    for (std::size_t i = 0; i < entries_.size(); ++i)
      os << "  \"" << escaped(entries_[i].first) << "\": "
         << entries_[i].second << (i + 1 < entries_.size() ? ",\n" : "\n");
    os << "}\n";
  }

  /// Returns false (with a stderr note) when the path is unwritable —
  /// benches should keep printing their tables regardless.
  bool write(const std::string& path) const {
    std::ofstream os(path);
    if (!os.good()) {
      std::cerr << "cannot write JSON report to " << path << "\n";
      return false;
    }
    render(os);
    return true;
  }

 private:
  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  void mirror(const std::string& key, double value) {
    if (sink_) sink_->record(source_, key, value, "report");
  }

  std::vector<std::pair<std::string, std::string>> entries_;
  std::shared_ptr<telemetry::TelemetrySink> sink_;
  std::string source_;
};

/// Boolean flag support (`--smoke` and friends) for the bench drivers.
inline bool flag_from_args(int argc, const char* const* argv,
                           const std::string& name) {
  for (int i = 1; i < argc; ++i)
    if (name == argv[i]) return true;
  return false;
}

/// `--json <path>` / `--json=<path>` support for the bench drivers
/// (which otherwise take no arguments). Empty string when absent.
inline std::string json_path_from_args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) return argv[i + 1];
    if (arg.rfind("--json=", 0) == 0) return arg.substr(7);
  }
  return {};
}

/// Generic `--name <value>` / `--name=<value>` lookup for the bench
/// drivers. Empty string when absent.
inline std::string value_from_args(int argc, const char* const* argv,
                                   const std::string& name) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == name && i + 1 < argc) return argv[i + 1];
    if (arg.rfind(name + "=", 0) == 0) return arg.substr(name.size() + 1);
  }
  return {};
}

/// The trajectory point this process's rows belong to: --run-id if the
/// caller passed one, else $GPAWFD_RUN_ID (what CI sets to the PR/SHA),
/// else "local".
inline std::string run_id_from_args(int argc, const char* const* argv) {
  std::string id = value_from_args(argc, argv, "--run-id");
  if (id.empty())
    if (const char* env = std::getenv("GPAWFD_RUN_ID")) id = env;
  return id.empty() ? "local" : id;
}

/// `--telemetry-dir <dir>` support: an open sink on <dir>/telemetry.gptt
/// tagged with run_id_from_args, or null when the flag is absent (every
/// telemetry call site takes null as "off"). The benches hand this to
/// JsonReport::mirror_to and ServiceConfig::telemetry.
inline std::shared_ptr<telemetry::TelemetrySink> sink_from_args(
    int argc, const char* const* argv) {
  const std::string dir = value_from_args(argc, argv, "--telemetry-dir");
  if (dir.empty()) return nullptr;
  std::filesystem::create_directories(dir);
  return telemetry::TelemetrySink::open_in(dir, run_id_from_args(argc, argv));
}

}  // namespace gpawfd::bench
