// Shared helpers for the figure-reproduction benchmark binaries.
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/table.hpp"
#include "core/figures.hpp"

namespace gpawfd::bench {

inline void banner(const std::string& title, const std::string& paper_ref,
                   const std::string& expectation) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "Paper reference: " << paper_ref << "\n"
            << "Expected shape:  " << expectation << "\n"
            << "==============================================================\n";
}

/// The four approaches of section VI in presentation order.
struct ApproachSpec {
  const char* name;
  const char* slug;  // key-safe name for JSON reports
  sched::Approach approach;
  bool uses_optimizations;  // false: always Optimizations::original()
};

inline constexpr ApproachSpec kApproaches[] = {
    {"Flat original", "flat_original", sched::Approach::kFlatOriginal, false},
    {"Flat optimized", "flat_optimized", sched::Approach::kFlatOptimized,
     true},
    {"Hybrid multiple", "hybrid_multiple", sched::Approach::kHybridMultiple,
     true},
    {"Hybrid master-only", "hybrid_master_only",
     sched::Approach::kHybridMasterOnly, true},
};

inline sched::Optimizations opts_for(const ApproachSpec& spec, int batch) {
  return spec.uses_optimizations ? sched::Optimizations::all_on(batch)
                                 : sched::Optimizations::original();
}

/// Flat JSON object writer for machine-readable bench artifacts
/// (BENCH_*.json), so successive PRs can diff throughput/latency series
/// without scraping the human tables. Keys keep insertion order.
class JsonReport {
 public:
  void set(const std::string& key, double value) {
    std::ostringstream os;
    os.precision(12);
    os << value;
    entries_.emplace_back(key, os.str());
  }
  void set(const std::string& key, std::int64_t value) {
    entries_.emplace_back(key, std::to_string(value));
  }
  void set(const std::string& key, int value) {
    set(key, static_cast<std::int64_t>(value));
  }
  void set(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, '"' + escaped(value) + '"');
  }

  void render(std::ostream& os) const {
    os << "{\n";
    for (std::size_t i = 0; i < entries_.size(); ++i)
      os << "  \"" << escaped(entries_[i].first) << "\": "
         << entries_[i].second << (i + 1 < entries_.size() ? ",\n" : "\n");
    os << "}\n";
  }

  /// Returns false (with a stderr note) when the path is unwritable —
  /// benches should keep printing their tables regardless.
  bool write(const std::string& path) const {
    std::ofstream os(path);
    if (!os.good()) {
      std::cerr << "cannot write JSON report to " << path << "\n";
      return false;
    }
    render(os);
    return true;
  }

 private:
  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Boolean flag support (`--smoke` and friends) for the bench drivers.
inline bool flag_from_args(int argc, const char* const* argv,
                           const std::string& name) {
  for (int i = 1; i < argc; ++i)
    if (name == argv[i]) return true;
  return false;
}

/// `--json <path>` / `--json=<path>` support for the bench drivers
/// (which otherwise take no arguments). Empty string when absent.
inline std::string json_path_from_args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) return argv[i + 1];
    if (arg.rfind("--json=", 0) == 0) return arg.substr(7);
  }
  return {};
}

}  // namespace gpawfd::bench
