// Shared helpers for the figure-reproduction benchmark binaries.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "core/figures.hpp"

namespace gpawfd::bench {

inline void banner(const std::string& title, const std::string& paper_ref,
                   const std::string& expectation) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "Paper reference: " << paper_ref << "\n"
            << "Expected shape:  " << expectation << "\n"
            << "==============================================================\n";
}

/// The four approaches of section VI in presentation order.
struct ApproachSpec {
  const char* name;
  sched::Approach approach;
  bool uses_optimizations;  // false: always Optimizations::original()
};

inline constexpr ApproachSpec kApproaches[] = {
    {"Flat original", sched::Approach::kFlatOriginal, false},
    {"Flat optimized", sched::Approach::kFlatOptimized, true},
    {"Hybrid multiple", sched::Approach::kHybridMultiple, true},
    {"Hybrid master-only", sched::Approach::kHybridMasterOnly, true},
};

inline sched::Optimizations opts_for(const ApproachSpec& spec, int batch) {
  return spec.uses_optimizations ? sched::Optimizations::all_on(batch)
                                 : sched::Optimizations::original();
}

}  // namespace gpawfd::bench
