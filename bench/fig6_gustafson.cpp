// Figure 6: Gustafson graph — the number of real-space grids grows at the
// same rate as the number of CPU-cores (one grid per core), grid size
// 192^3, best batch size per point. Left axis: running time; right axis:
// communication per node in MB.
//
// Expected shape: running times flatten (scaled workload) but rise with
// core count because communication per node grows faster than compute;
// Hybrid multiple overtakes Flat optimized from 512 cores on (its grids
// are partitioned 4x less finely); Flat original is worst throughout;
// Flat comm/node is well above Hybrid comm/node and both grow.
#include <iostream>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace gpawfd;
  using namespace gpawfd::bench;
  using sched::Approach;
  using sched::JobConfig;
  using sched::Optimizations;

  const auto m = bgsim::MachineConfig::bluegene_p();

  banner("Figure 6: Gustafson graph, grids = cores, 192^3, best batch",
         "Kristensen et al., IPDPS'09, Fig. 6",
         "Hybrid multiple fastest from 512 cores; Flat original slowest; "
         "Flat comm/node ~1.7x Hybrid comm/node");

  JsonReport rep;
  rep.mirror_to(sink_from_args(argc, argv), "bench.fig6_gustafson");
  rep.set("bench", std::string("fig6_gustafson"));

  Table t({"cores=grids", "Flat original [s]", "Flat optimized [s]",
           "Hybrid multiple [s]", "Hybrid master-only [s]",
           "Flat comm/node [MB]", "Hybrid comm/node [MB]",
           "best batch (flat/hyb)"});

  for (int cores : {1, 512, 2048, 4096, 8192, 16384}) {
    JobConfig job;
    job.grid_shape = Vec3::cube(192);
    job.ngrids = cores;

    std::vector<std::string> row{std::to_string(cores)};
    double flat_mb = 0, hyb_mb = 0;
    int flat_batch = 1, hyb_batch = 1;
    for (const ApproachSpec& spec : kApproaches) {
      int batch = 1;
      if (spec.uses_optimizations && cores > 1) {
        batch = core::best_batch_size(spec.approach, job,
                                      Optimizations::all_on(1), cores, 4, m);
      }
      const auto r = core::simulate_scaled(spec.approach, job,
                                           opts_for(spec, batch), cores, 4, m);
      row.push_back(fmt_fixed(r.seconds, 3));
      rep.set("seconds_" + std::string(spec.slug) + "_cores" +
                  std::to_string(cores),
              r.seconds);
      if (spec.approach == Approach::kFlatOptimized) {
        flat_mb = r.bytes_sent_per_node / 1e6;
        flat_batch = batch;
      }
      if (spec.approach == Approach::kHybridMultiple) {
        hyb_mb = r.bytes_sent_per_node / 1e6;
        hyb_batch = batch;
      }
    }
    row.push_back(fmt_fixed(flat_mb, 1));
    row.push_back(fmt_fixed(hyb_mb, 1));
    row.push_back(std::to_string(flat_batch) + "/" + std::to_string(hyb_batch));
    const std::string cs = std::to_string(cores);
    rep.set("comm_mb_flat_cores" + cs, flat_mb);
    rep.set("comm_mb_hybrid_cores" + cs, hyb_mb);
    rep.set("best_batch_flat_cores" + cs, flat_batch);
    rep.set("best_batch_hybrid_cores" + cs, hyb_batch);
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  std::cout
      << "\npaper-vs-measured:\n"
      << "  paper: Hybrid multiple faster than Flat optimized from 512 "
         "cores (4x coarser partitioning);\n"
      << "  paper: communication per node grows with core count, Flat "
         "well above Hybrid (right axis up to ~1000 MB).\n"
      << "  note: absolute seconds differ from the paper (our job runs "
         "one FD sweep per grid; the paper's\n"
      << "  benchmark loops the operation), but the relative ordering "
         "and growth are the reproduced shape.\n";

  std::string path = json_path_from_args(argc, argv);
  if (path.empty()) path = "BENCH_fig6.json";
  if (rep.write(path)) std::cout << "JSON written to " << path << "\n";
  return 0;
}
