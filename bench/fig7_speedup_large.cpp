// Figure 7 + the headline numbers: speedup graph starting at 1024
// CPU-cores for a large job — 2816 real-space grids of 192^3, best batch
// size per point. Every approach is normalized to Flat original at 1024
// cores.
//
// Expected shape (paper): Hybrid multiple reaches ~16.5x at 16k cores
// (12x against itself; 16x would be linear); Flat optimized close behind
// (~10% slower at 16k); Hybrid master-only clearly below; Flat original
// lowest. Headline: Hybrid multiple is 94% faster (1.94x) than Flat
// original at 16384 cores — utilization 36% -> 70%.
#include <iostream>
#include <map>

#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace gpawfd;
  using namespace gpawfd::bench;
  using sched::Approach;
  using sched::JobConfig;
  using sched::Optimizations;

  const auto m = bgsim::MachineConfig::bluegene_p();
  JobConfig job;
  job.grid_shape = Vec3::cube(192);
  job.ngrids = 2816;

  banner("Figure 7: speedup from 1k cores, 2816 grids of 192^3, best batch",
         "Kristensen et al., IPDPS'09, Fig. 7 + section VII/VIII headline",
         "Hybrid multiple ~16.5x vs Flat original@1k at 16k cores; 1.94x "
         "vs Flat original at 16k; ~10% over Flat optimized; util 36->70%");

  const double seq = core::simulate_sequential_seconds(job, m);

  JsonReport rep;
  rep.mirror_to(sink_from_args(argc, argv), "bench.fig7_speedup_large");
  rep.set("bench", std::string("fig7_speedup_large"));
  rep.set("sequential_seconds", seq);

  struct Cell {
    double seconds = 0;
  };
  const int cores_list[] = {1024, 2048, 4096, 8192, 16384};
  std::map<std::pair<int, int>, double> seconds;  // (approach idx, cores)

  Table t({"cores", "Flat original", "Flat optimized", "Hybrid multiple",
           "Hybrid master-only"});
  double t_fo_1k = 0;
  for (int cores : cores_list) {
    std::vector<double> secs;
    for (const ApproachSpec& spec : kApproaches) {
      int batch = 1;
      if (spec.uses_optimizations) {
        batch = core::best_batch_size(spec.approach, job,
                                      Optimizations::all_on(1), cores, 4, m);
      }
      const auto r = core::simulate_scaled(spec.approach, job,
                                           opts_for(spec, batch), cores, 4, m);
      secs.push_back(r.seconds);
    }
    if (cores == 1024) t_fo_1k = secs[0];
    std::vector<std::string> row{std::to_string(cores)};
    for (std::size_t a = 0; a < 4; ++a) {
      row.push_back(fmt_fixed(t_fo_1k / secs[a], 2));
      seconds[{static_cast<int>(a), cores}] = secs[a];
      rep.set("speedup_" + std::string(kApproaches[a].slug) + "_cores" +
                  std::to_string(cores),
              t_fo_1k / secs[a]);
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  const double fo_16k = seconds[{0, 16384}];
  const double fopt_16k = seconds[{1, 16384}];
  const double hm_16k = seconds[{2, 16384}];
  const double hm_1k = seconds[{2, 1024}];

  std::cout << "\nheadline numbers (paper -> measured):\n"
            << "  Hybrid multiple speedup vs Flat original@1k at 16k cores: "
               "paper ~16.5 -> "
            << fmt_fixed(t_fo_1k / hm_16k, 1) << "\n"
            << "  Hybrid multiple self speedup 1k->16k (linear 16): paper "
               "~12 -> "
            << fmt_fixed(hm_1k / hm_16k, 1) << "\n"
            << "  Hybrid multiple vs Flat original at 16k: paper 1.94x -> "
            << fmt_fixed(fo_16k / hm_16k, 2) << "x\n"
            << "  Hybrid multiple vs Flat optimized at 16k: paper ~1.10x -> "
            << fmt_fixed(fopt_16k / hm_16k, 2) << "x\n"
            << "  CPU utilization Flat original at 16k: paper 36% -> "
            << fmt_fixed(100 * seq / (16384 * fo_16k), 1) << "%\n"
            << "  CPU utilization Hybrid multiple at 16k: paper 70% -> "
            << fmt_fixed(100 * seq / (16384 * hm_16k), 1) << "%\n";

  rep.set("headline_hybrid_vs_flat_original_1k_at_16k", t_fo_1k / hm_16k);
  rep.set("headline_hybrid_self_speedup_1k_to_16k", hm_1k / hm_16k);
  rep.set("headline_hybrid_vs_flat_original_at_16k", fo_16k / hm_16k);
  rep.set("headline_hybrid_vs_flat_optimized_at_16k", fopt_16k / hm_16k);
  rep.set("utilization_flat_original_16k_pct", 100 * seq / (16384 * fo_16k));
  rep.set("utilization_hybrid_multiple_16k_pct",
          100 * seq / (16384 * hm_16k));

  std::string path = json_path_from_args(argc, argv);
  if (path.empty()) path = "BENCH_fig7.json";
  if (rep.write(path)) std::cout << "JSON written to " << path << "\n";
  return 0;
}
